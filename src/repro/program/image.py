"""Executable images: segments, the MLR "special header", and GOT/PLT.

The paper's MLR flow (Figure 3) has the program loader assemble a
*special header* in memory — code/data segment locations and sizes plus
the stack / heap / shared-library bases — and hand its address to the
MLR module via a CHECK instruction.  This module defines that header's
binary format, the segment containers, and the PLT entry encoding whose
rewriting the MLR module performs in hardware.

PLT entries.  Each PLT entry is "an indirect jump to a library function
through an entry in the GOT" (paper, footnote 7).  In our ISA one entry
is four words::

    lui  $at, hi(got_entry)
    ori  $at, $at, lo(got_entry)
    lw   $at, 0($at)
    jr   $at

Rewriting an entry for a relocated GOT replaces the address embedded in
the first two words — exactly the paper's "replacing the address value
in the indirect jump pointing to the old GOT".
"""

from repro.isa.encoding import decode, encode
from repro.isa.instructions import SPEC_BY_NAME

HEADER_MAGIC = 0x52534531          # "RSE1"
HEADER_WORDS = 13
HEADER_BYTES = HEADER_WORDS * 4

# Word offsets inside the special header.
(H_MAGIC, H_CODE_START, H_CODE_LEN, H_DATA_START, H_DATA_LEN, H_BSS_LEN,
 H_SHLIB_BASE, H_STACK_BASE, H_HEAP_BASE, H_GOT_ADDR, H_GOT_ENTRIES,
 H_PLT_ADDR, H_PLT_ENTRIES) = range(HEADER_WORDS)

PLT_ENTRY_WORDS = 4
PLT_ENTRY_BYTES = PLT_ENTRY_WORDS * 4

_AT = 1


class ExecutableHeader:
    """The special header the MLR module parses (Figure 3(B))."""

    FIELDS = ("code_start", "code_len", "data_start", "data_len", "bss_len",
              "shlib_base", "stack_base", "heap_base", "got_addr",
              "got_entries", "plt_addr", "plt_entries")

    def __init__(self, **fields):
        for name in self.FIELDS:
            setattr(self, name, fields.get(name, 0))

    def pack(self):
        """Serialise to the little-endian in-memory representation."""
        words = [HEADER_MAGIC]
        words.extend(getattr(self, name) & 0xFFFFFFFF for name in self.FIELDS)
        return b"".join(word.to_bytes(4, "little") for word in words)

    @classmethod
    def unpack(cls, payload):
        """Parse a header from *payload* bytes; validates the magic."""
        if len(payload) < HEADER_BYTES:
            raise ValueError("header too short")
        words = [int.from_bytes(payload[i * 4:i * 4 + 4], "little")
                 for i in range(HEADER_WORDS)]
        if words[H_MAGIC] != HEADER_MAGIC:
            raise ValueError("bad header magic 0x%08x" % words[H_MAGIC])
        return cls(**dict(zip(cls.FIELDS, words[1:])))

    def __repr__(self):
        inner = ", ".join("%s=0x%x" % (name, getattr(self, name))
                          for name in self.FIELDS)
        return "ExecutableHeader(%s)" % inner


class Segment:
    """One loadable region: name, base address, initial bytes, permissions."""

    __slots__ = ("name", "base", "data", "perms")

    def __init__(self, name, base, data, perms):
        self.name = name
        self.base = base
        self.data = bytes(data)
        self.perms = perms          # subset of "rwx"

    @property
    def end(self):
        return self.base + len(self.data)

    def __repr__(self):
        return "Segment(%s @0x%08x, %d bytes, %s)" % (
            self.name, self.base, len(self.data), self.perms)


class ProcessImage:
    """A fully described, loadable process."""

    def __init__(self, segments, entry, header, symbols, layout):
        self.segments = list(segments)
        self.entry = entry
        self.header = header
        self.symbols = dict(symbols)
        self.layout = layout

    def segment(self, name):
        for segment in self.segments:
            if segment.name == name:
                return segment
        raise KeyError(name)


def build_image(assembly, layout, got_symbol=None, got_entries=0,
                plt_symbol=None, plt_entries=0):
    """Build a :class:`ProcessImage` from an :class:`~repro.isa.assembler.Assembly`.

    The GOT/PLT, when present, live inside the assembly's own segments
    (Section 5.3's "application private dynamic loader" approach: the
    target program carries its GOT and PLT as user data); *got_symbol* /
    *plt_symbol* name their start labels.
    """
    if assembly.text_base != layout.text_base:
        raise ValueError("assembly text base 0x%x != layout 0x%x" % (
            assembly.text_base, layout.text_base))
    got_addr = assembly.symbols[got_symbol] if got_symbol else 0
    plt_addr = assembly.symbols[plt_symbol] if plt_symbol else 0
    header = ExecutableHeader(
        code_start=assembly.text_base,
        code_len=len(assembly.text),
        data_start=assembly.data_base,
        data_len=len(assembly.data),
        bss_len=0,
        shlib_base=layout.shlib_base,
        stack_base=layout.stack_top,
        heap_base=layout.heap_base,
        got_addr=got_addr,
        got_entries=got_entries,
        plt_addr=plt_addr,
        plt_entries=plt_entries,
    )
    segments = [
        Segment(".text", assembly.text_base, assembly.text, "rx"),
        Segment(".data", assembly.data_base, assembly.data, "rw"),
    ]
    return ProcessImage(segments, assembly.entry, header, assembly.symbols,
                        layout)


# ----------------------------------------------------------------- PLT ops

def build_plt_entry(got_entry_addr):
    """Encode one PLT entry (4 words) jumping through *got_entry_addr*."""
    lui = SPEC_BY_NAME["lui"]
    ori = SPEC_BY_NAME["ori"]
    lw = SPEC_BY_NAME["lw"]
    jr = SPEC_BY_NAME["jr"]
    return [
        encode(lui, rt=_AT, imm=(got_entry_addr >> 16) & 0xFFFF),
        encode(ori, rt=_AT, rs=_AT, imm=got_entry_addr & 0xFFFF),
        encode(lw, rt=_AT, rs=_AT, imm=0),
        encode(jr, rs=_AT),
    ]


def plt_entry_target(words):
    """Extract the GOT-entry address embedded in a PLT entry's words."""
    lui = decode(words[0])
    ori = decode(words[1])
    if lui.name != "lui" or ori.name != "ori":
        raise ValueError("not a PLT entry")
    return ((lui.uimm << 16) | ori.uimm) & 0xFFFFFFFF


def rewrite_plt_entry(words, new_got_entry_addr):
    """Return the entry's words redirected to *new_got_entry_addr*.

    Only the two address-carrying words change — the load and the jump
    are untouched, matching the hardware's narrow rewrite.
    """
    fresh = build_plt_entry(new_got_entry_addr)
    return [fresh[0], fresh[1], words[2], words[3]]
