"""Program loader: place a :class:`ProcessImage` into simulated memory.

Responsibilities (mirroring the split the paper describes in
Section 4.1, where "the randomization task is split between the program
loader and the MLR module"):

* copy segments into main memory;
* zero and map the stack, compute the initial stack pointer;
* assemble the *special header* at the layout's header staging area so
  guest code (or the MLR module) can find it;
* produce the page-permission map the kernel enforces (the PLT rewrite
  step needs an explicit permission grant, Figure 3(A) I9/I11).
"""

from repro.memory.mainmem import PAGE_SHIFT, PAGE_SIZE
from repro.program.image import HEADER_BYTES


class LoadedProcess:
    """Result of loading: entry state plus the permission map."""

    def __init__(self, image, entry, initial_sp, initial_gp, page_perms):
        self.image = image
        self.entry = entry
        self.initial_sp = initial_sp
        self.initial_gp = initial_gp
        self.page_perms = page_perms      # page index -> perms string

    def __repr__(self):
        return "LoadedProcess(entry=0x%08x, sp=0x%08x)" % (
            self.entry, self.initial_sp)


def _pages_spanning(base, length):
    if length <= 0:
        return range(0)
    first = base >> PAGE_SHIFT
    last = (base + length - 1) >> PAGE_SHIFT
    return range(first, last + 1)


class Loader:
    """Loads process images into a :class:`~repro.memory.mainmem.MainMemory`."""

    def __init__(self, memory):
        self.memory = memory

    def load(self, image, stack_headroom=64):
        """Load *image*; returns a :class:`LoadedProcess`.

        *stack_headroom* bytes are left unused above the initial stack
        pointer (room for a fake return frame, matching common ABIs).
        """
        layout = image.layout
        page_perms = {}

        for segment in image.segments:
            self.memory.store_bytes(segment.base, segment.data)
            for page in _pages_spanning(segment.base, len(segment.data)):
                page_perms[page] = segment.perms

        # Stack: zeroed, rw, grows down from stack_top.
        stack_base = layout.stack_base
        self.memory.store_bytes(stack_base, b"\x00" * layout.stack_bytes)
        for page in _pages_spanning(stack_base, layout.stack_bytes):
            page_perms[page] = "rw"

        # Heap: map one initial page; the sbrk syscall extends it.
        self.memory.store_bytes(layout.heap_base, b"\x00" * PAGE_SIZE)
        page_perms[layout.heap_base >> PAGE_SHIFT] = "rw"

        # Special header staging area (rw so guest loader code can build
        # headers itself, as the paper's library function does).
        self.memory.store_bytes(layout.header_base, image.header.pack())
        for page in _pages_spanning(layout.header_base,
                                    max(HEADER_BYTES, PAGE_SIZE)):
            page_perms[page] = "rw"

        initial_sp = (layout.stack_top - stack_headroom) & ~0x7
        initial_gp = layout.data_base
        return LoadedProcess(image, image.entry, initial_sp, initial_gp,
                             page_perms)
