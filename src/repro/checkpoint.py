"""Whole-machine architectural checkpoint/restore.

Fault-injection campaigns re-simulate the same warmup prefix for every
injection: N injections over a workload whose triggers average T cycles
re-execute N*T redundant cycles.  The injection environments in the
related literature (InjectV, ISAAC) all converge on the same lever —
*snapshot once, fork per fault* — and this module is that lever for the
whole simulated machine:

``Machine.checkpoint()``
    returns a :class:`MachineCheckpoint` — an immutable, self-contained
    copy of every piece of mutable machine state;
``Machine.restore(cp)``
    rewinds the *same* machine to that point.  One checkpoint can be
    restored any number of times; execution after a restore is
    cycle-for-cycle identical to a cold run (`tests/integration/
    test_checkpoint.py` proves this against the difftest oracle).

Design notes
------------

**Memory is copy-on-write against the page table.**  `MainMemory` is
sparse (4 KB pages materialised on first touch) and already versions
every page on store for the predecode cache.  A checkpoint copies only
the materialised pages (:meth:`MainMemory.capture_state`); restore
(:meth:`MainMemory.restore_state`) compares versions and touches only
pages the discarded timeline actually wrote, giving every changed page
a version *strictly above* any it has ever had.  That monotonicity is
the predecode interplay: cached decode closures revalidate by version
equality, so entries for untouched pages stay hot across a restore
while entries for rewound pages can never falsely revalidate.

**Everything else is captured by component, through one shared
``deepcopy``.**  The machine's singletons — memory, hierarchy, pipeline,
RSE engine, MAU, IOQ, input queues, self-checker, modules, kernel — are
*pinned* in the deepcopy memo, so the capture copies their mutable
fields while every cross-reference (an in-flight uop shared between the
ROB, the rename map and an IOQ entry; a thread shared between the
kernel and the scheduler) resolves to one consistent clone.  Restore
deep-copies the stored state again (so the checkpoint stays pristine)
and grafts the fields back onto the live objects — external references
to the machine's components remain valid across a restore.

**Pending MAU work must be plain data.**  Module->MAU requests carry a
``(module, tag)`` continuation instead of a Python closure precisely so
they can be checkpointed; a request still using a bare callback (the
MLR's load-time sequences do) makes the machine refuse to checkpoint
rather than silently capture a closure whose captured objects the
restore cannot rewind.

The captured boundary is a plain cycle boundary — callers who want the
paper's "drained commit boundary" (architectural state only, empty
ROB) can simply checkpoint when the pipeline is idle; the campaign
runner checkpoints mid-flight and relies on full microarchitectural
capture so forked and cold runs retire identical streams.

Wire format
-----------

:meth:`MachineCheckpoint.to_bytes` / :meth:`MachineCheckpoint
.from_bytes` turn a checkpoint into a self-contained byte string that
can cross a process (or host) boundary — the lever the sharded campaign
service (:mod:`repro.campaign.service`) uses to simulate a warmup
prefix once and ship the warmed image to every worker:

* a fixed **versioned header** (magic + format version) so a reader can
  reject foreign or stale images *before* unpickling anything;
* the **page store is deduplicated** by content — identical pages (the
  zero page under a sparse heap, replicated data segments) serialize
  once, and the page table references blobs by ordinal;
* component state is pickled with the machine's pinned singletons
  replaced by **pin references** (ordinal placeholders).  On restore
  into a machine of the same shape, each placeholder resolves to that
  machine's own singleton — the deserialized state grafts onto the
  target machine exactly like a live restore.  Restoring into a machine
  of a different shape (protected vs bare) is a loud
  :class:`CheckpointError`, not silent corruption.

A :class:`CampaignImage` bundles one serialized checkpoint with the
campaign-spec fingerprint it was warmed for plus a metadata dict
(golden results, capture cycle), so a worker can verify it is striking
the campaign it thinks it is before restoring anything.
"""

import copy
import hashlib
import io
import pickle
import struct

__all__ = ["CampaignImage", "CheckpointError", "MachineCheckpoint",
           "capture", "restore", "warm"]

#: Wire-format header: magic + little-endian u16 version.  Bump the
#: version whenever the payload layout changes; readers reject any
#: version they were not built for.
WIRE_MAGIC = b"RPCP"
WIRE_VERSION = 1
IMAGE_MAGIC = b"RPCI"
IMAGE_VERSION = 1
_HEADER = struct.Struct("<4sH")


class CheckpointError(RuntimeError):
    """The machine is in a state the checkpoint layer cannot capture."""


#: Per-component fields that are wiring or derived caches, not mutable
#: machine state: left untouched by restore.
_PIPELINE_SKIP = frozenset((
    "memory", "hierarchy", "config", "rse", "check_injector", "mem_check",
    "_predecode",
))
_ENGINE_SKIP = frozenset((
    "memory", "hierarchy", "kernel", "queues", "ioq", "mau", "selfcheck",
    "modules",
))
_MAU_SKIP = frozenset(("memory", "hierarchy"))
_QUEUE_SKIP = frozenset(("name", "depth"))
_SELFCHECK_SKIP = frozenset(("engine",))
_MODULE_SKIP = frozenset(("engine", "name", "save_page_handler"))
_KERNEL_SKIP = frozenset((
    # "netif" is fleet wiring, not machine state: a checkpoint restored
    # onto a spare node must keep the *spare's* network interface, and a
    # NetworkInterface references the cross-machine device anyway.
    "pipeline", "memory", "rse", "config", "snapshot_provider", "netif",
))


class _PinRef:
    """Placeholder for a pinned machine singleton inside wire state.

    Serialized checkpoints cannot carry the live singletons a capture's
    deepcopy memo preserved, so the wire pickler replaces each with its
    ordinal in the deterministic :func:`_pins` list.  During
    :func:`restore` the placeholder's ``__deepcopy__`` resolves it to
    the *target* machine's singleton at the same ordinal — outside a
    restore it deep-copies to itself, keeping deserialized checkpoints
    inert and re-serializable.
    """

    __slots__ = ("index",)

    def __init__(self, index):
        self.index = index

    def __deepcopy__(self, memo):
        pins = _ACTIVE_PINS
        if pins is None:
            return self
        try:
            return pins[self.index]
        except IndexError:
            raise CheckpointError(
                "checkpoint references pin #%d but the target machine "
                "has only %d pinned components — it was captured on a "
                "differently shaped machine" % (self.index, len(pins)))

    def __reduce__(self):
        return (_PinRef, (self.index,))

    def __repr__(self):
        return "_PinRef(%d)" % self.index


#: Pin list a restore is currently resolving against (single-threaded,
#: like the rest of the simulator).
_ACTIVE_PINS = None


class MachineCheckpoint:
    """An immutable whole-machine snapshot (see module docstring)."""

    __slots__ = ("cycle", "pages", "versions", "_state", "_pins",
                 "pin_count")

    def __init__(self, cycle, pages, versions, state, pins=None,
                 pin_count=None):
        self.cycle = cycle          # pipeline cycle at capture
        self.pages = pages          # page index -> bytes (materialised only)
        self.versions = versions    # page index -> write version at capture
        self._state = state         # per-component deep-copied field dicts
        # Live captures remember their pinned singletons so to_bytes()
        # can replace in-state references with ordinals; deserialized
        # checkpoints have no live pins (their state holds _PinRef
        # placeholders) but remember how many the capture machine had.
        self._pins = pins
        self.pin_count = (len(pins) if pin_count is None and pins is not None
                          else pin_count)

    def __repr__(self):
        return "MachineCheckpoint(cycle=%d, pages=%d)" % (
            self.cycle, len(self.pages))

    # ------------------------------------------------------------ wire format

    def to_bytes(self):
        """Serialize to a self-contained byte string (versioned header,
        deduplicated page store, pin-substituted component state)."""
        blobs = []
        blob_index = {}
        page_blob = {}
        for index in sorted(self.pages):
            payload = self.pages[index]
            ordinal = blob_index.get(payload)
            if ordinal is None:
                ordinal = blob_index[payload] = len(blobs)
                blobs.append(payload)
            page_blob[index] = ordinal

        pin_ids = ({id(pin): ordinal
                    for ordinal, pin in enumerate(self._pins)}
                   if self._pins is not None else {})
        buffer = io.BytesIO()
        pickler = pickle.Pickler(buffer, protocol=4)

        def persistent_id(obj):
            if type(obj) is _PinRef:
                return ("pin", obj.index)
            ordinal = pin_ids.get(id(obj))
            return None if ordinal is None else ("pin", ordinal)

        pickler.persistent_id = persistent_id
        pickler.dump(self._state)
        document = {
            "cycle": self.cycle,
            "versions": self.versions,
            "blobs": blobs,
            "page_blob": page_blob,
            "state": buffer.getvalue(),
            "pin_count": self.pin_count,
        }
        return (_HEADER.pack(WIRE_MAGIC, WIRE_VERSION)
                + pickle.dumps(document, protocol=4))

    @classmethod
    def from_bytes(cls, payload):
        """Deserialize a :meth:`to_bytes` image.

        Rejects anything that is not a checkpoint image of exactly
        :data:`WIRE_VERSION` before unpickling the body.
        """
        document = cls._open_wire(payload, WIRE_MAGIC, WIRE_VERSION,
                                  "checkpoint")
        buffer = io.BytesIO(document["state"])
        unpickler = pickle.Unpickler(buffer)

        def persistent_load(pid):
            kind, ordinal = pid
            if kind != "pin":
                raise CheckpointError(
                    "unknown persistent reference %r in checkpoint" % (pid,))
            return _PinRef(ordinal)

        unpickler.persistent_load = persistent_load
        state = unpickler.load()
        blobs = document["blobs"]
        pages = {index: blobs[ordinal]
                 for index, ordinal in document["page_blob"].items()}
        return cls(document["cycle"], pages, document["versions"], state,
                   pins=None, pin_count=document["pin_count"])

    @staticmethod
    def _open_wire(payload, magic, version, what):
        """Validate a versioned header; returns the unpickled document."""
        if len(payload) < _HEADER.size:
            raise CheckpointError("truncated %s image" % what)
        found_magic, found_version = _HEADER.unpack_from(payload)
        if found_magic != magic:
            raise CheckpointError(
                "not a %s image (bad magic %r)" % (what, found_magic))
        if found_version != version:
            raise CheckpointError(
                "%s image is format version %d; this build reads only "
                "version %d" % (what, found_version, version))
        return pickle.loads(payload[_HEADER.size:])


class CampaignImage:
    """A serialized warmed machine image bound to a campaign fingerprint.

    The sharded campaign service simulates the warmup prefix once,
    captures the machine, and ships this bundle to every worker; a
    worker refuses to strike unless :attr:`fingerprint` matches the
    spec it was handed (:meth:`verify`), so an image can never be
    silently reused across campaign configurations.
    """

    __slots__ = ("fingerprint", "payload", "meta")

    def __init__(self, fingerprint, payload, meta=None):
        self.fingerprint = fingerprint   # CampaignSpec.fingerprint()
        self.payload = payload           # MachineCheckpoint.to_bytes()
        self.meta = dict(meta or {})     # golden results, capture cycle, ...

    def checkpoint(self):
        """Deserialize the bundled :class:`MachineCheckpoint`."""
        return MachineCheckpoint.from_bytes(self.payload)

    def verify(self, fingerprint):
        if self.fingerprint != fingerprint:
            raise CheckpointError(
                "campaign image was warmed for fingerprint %s, not %s"
                % (self.fingerprint, fingerprint))
        return self

    def digest(self):
        """Content digest of the machine image (shard-merge audits)."""
        return hashlib.sha256(self.payload).hexdigest()[:16]

    def to_bytes(self):
        document = {"fingerprint": self.fingerprint,
                    "payload": self.payload, "meta": self.meta}
        return (_HEADER.pack(IMAGE_MAGIC, IMAGE_VERSION)
                + pickle.dumps(document, protocol=4))

    @classmethod
    def from_bytes(cls, payload):
        document = MachineCheckpoint._open_wire(
            payload, IMAGE_MAGIC, IMAGE_VERSION, "campaign")
        return cls(document["fingerprint"], document["payload"],
                   document["meta"])

    def __repr__(self):
        return "CampaignImage(fingerprint=%s, %d bytes)" % (
            self.fingerprint, len(self.payload))


#: class -> tuple of instance attribute names, learned from the first
#: instance captured.  Reading ``obj.__dict__`` materialises a managed
#: dict on the instance, and CPython (3.11+) then permanently drops the
#: inline-values LOAD_ATTR fast path for that object — measured at ~20%
#: on the whole-pipeline simulation rate.  Caching the names per class
#: and walking them with ``getattr`` keeps every machine captured after
#: the first one (and the first one too, if :func:`warm` ran) at full
#: speed.  Safe because every captured class assigns all of its fields
#: in ``__init__``; a field that appears only on later instances would
#: be a bug this cache turns into a loud AttributeError on capture.
_FIELD_NAMES = {}


def _fields(obj, skip=frozenset()):
    cls = type(obj)
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = _FIELD_NAMES[cls] = tuple(obj.__dict__)
    return {name: getattr(obj, name) for name in names
            if name not in skip}


def _graft(obj, fields):
    for key, value in fields.items():
        setattr(obj, key, value)


def _pins(machine):
    """The identity-preserved singletons (deepcopy memo seeds)."""
    pipeline = machine.pipeline
    kernel = machine.kernel
    pins = [machine, machine.memory, machine.hierarchy, pipeline, kernel,
            pipeline.config, kernel.config]
    if pipeline._predecode is not None:
        pins.append(pipeline._predecode)
    rse = machine.rse
    if rse is not None:
        pins.extend((rse, rse.mau, rse.ioq, rse.queues, rse.selfcheck))
        pins.extend(rse.queues.all_queues())
        pins.extend(rse.modules.values())
    return pins


def _pending_requests(mau):
    pending = list(mau._queue)
    if mau._active is not None:
        pending.append(mau._active)
    return pending


def _collect(machine):
    state = {
        "pipeline": _fields(machine.pipeline, _PIPELINE_SKIP),
        "hierarchy": _fields(machine.hierarchy),
        "kernel": _fields(machine.kernel, _KERNEL_SKIP),
    }
    rse = machine.rse
    if rse is not None:
        state["rse"] = {
            "engine": _fields(rse, _ENGINE_SKIP),
            "mau": _fields(rse.mau, _MAU_SKIP),
            "ioq": _fields(rse.ioq),
            "selfcheck": _fields(rse.selfcheck, _SELFCHECK_SKIP),
            "queues": {queue.name: _fields(queue, _QUEUE_SKIP)
                       for queue in rse.queues.all_queues()},
            "modules": {module_id: _fields(module, _MODULE_SKIP)
                        for module_id, module in rse.modules.items()},
        }
    return state


def warm(machine):
    """Populate the field-name cache from a sacrificial *machine*.

    The first capture of each class reads ``__dict__`` to learn the
    field names, which permanently slows attribute access on that one
    instance (see :data:`_FIELD_NAMES`).  Callers that keep a long-lived
    trunk machine (the campaign fork engine) capture a same-shaped
    throwaway machine first so the trunk never pays that cost.
    """
    capture(machine)


def capture(machine):
    """Snapshot *machine*; returns a :class:`MachineCheckpoint`."""
    rse = machine.rse
    if rse is not None:
        holders = sorted({request.module_name
                          for request in _pending_requests(rse.mau)
                          if request.callback is not None})
        if holders:
            raise CheckpointError(
                "pending MAU request(s) from %s carry Python callbacks; "
                "only tag-based (module, tag) requests are checkpointable "
                "— drain the MAU or convert the module to on_mau_complete"
                % ", ".join(holders))
    pages, versions = machine.memory.capture_state()
    pins = _pins(machine)
    memo = {id(pin): pin for pin in pins}
    state = copy.deepcopy(_collect(machine), memo)
    return MachineCheckpoint(machine.pipeline.cycle, pages, versions, state,
                             pins=pins)


def restore(machine, checkpoint):
    """Rewind *machine* to *checkpoint* (reusable; returns *machine*).

    Works for live checkpoints (captured in this process) and wire
    checkpoints (:meth:`MachineCheckpoint.from_bytes`) alike; a wire
    checkpoint's pin references resolve to *machine*'s own singletons,
    which requires the target to have the same component shape as the
    capture machine.
    """
    global _ACTIVE_PINS

    pins = _pins(machine)
    if checkpoint.pin_count is not None and checkpoint.pin_count != len(pins):
        raise CheckpointError(
            "checkpoint was captured on a machine with %d pinned "
            "components; this machine has %d — build the target with "
            "the same configuration (RSE, modules, predecode)"
            % (checkpoint.pin_count, len(pins)))
    machine.memory.restore_state(checkpoint.pages, checkpoint.versions)
    # Re-copy the stored state with the same pins so the checkpoint
    # survives this restore untouched and can be restored again.
    memo = {id(pin): pin for pin in pins}
    _ACTIVE_PINS = pins
    try:
        state = copy.deepcopy(checkpoint._state, memo)
    finally:
        _ACTIVE_PINS = None
    _graft(machine.pipeline, state["pipeline"])
    _graft(machine.hierarchy, state["hierarchy"])
    _graft(machine.kernel, state["kernel"])
    rse = machine.rse
    if rse is not None:
        if "rse" not in state:
            raise CheckpointError(
                "checkpoint was captured without an RSE attached")
        sub = state["rse"]
        _graft(rse, sub["engine"])
        _graft(rse.mau, sub["mau"])
        _graft(rse.ioq, sub["ioq"])
        _graft(rse.selfcheck, sub["selfcheck"])
        for queue in rse.queues.all_queues():
            _graft(queue, sub["queues"][queue.name])
        for module_id, fields in sub["modules"].items():
            _graft(rse.modules[module_id], fields)
    return machine
