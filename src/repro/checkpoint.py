"""Whole-machine architectural checkpoint/restore.

Fault-injection campaigns re-simulate the same warmup prefix for every
injection: N injections over a workload whose triggers average T cycles
re-execute N*T redundant cycles.  The injection environments in the
related literature (InjectV, ISAAC) all converge on the same lever —
*snapshot once, fork per fault* — and this module is that lever for the
whole simulated machine:

``Machine.checkpoint()``
    returns a :class:`MachineCheckpoint` — an immutable, self-contained
    copy of every piece of mutable machine state;
``Machine.restore(cp)``
    rewinds the *same* machine to that point.  One checkpoint can be
    restored any number of times; execution after a restore is
    cycle-for-cycle identical to a cold run (`tests/integration/
    test_checkpoint.py` proves this against the difftest oracle).

Design notes
------------

**Memory is copy-on-write against the page table.**  `MainMemory` is
sparse (4 KB pages materialised on first touch) and already versions
every page on store for the predecode cache.  A checkpoint copies only
the materialised pages (:meth:`MainMemory.capture_state`); restore
(:meth:`MainMemory.restore_state`) compares versions and touches only
pages the discarded timeline actually wrote, giving every changed page
a version *strictly above* any it has ever had.  That monotonicity is
the predecode interplay: cached decode closures revalidate by version
equality, so entries for untouched pages stay hot across a restore
while entries for rewound pages can never falsely revalidate.

**Everything else is captured by component, through one shared
``deepcopy``.**  The machine's singletons — memory, hierarchy, pipeline,
RSE engine, MAU, IOQ, input queues, self-checker, modules, kernel — are
*pinned* in the deepcopy memo, so the capture copies their mutable
fields while every cross-reference (an in-flight uop shared between the
ROB, the rename map and an IOQ entry; a thread shared between the
kernel and the scheduler) resolves to one consistent clone.  Restore
deep-copies the stored state again (so the checkpoint stays pristine)
and grafts the fields back onto the live objects — external references
to the machine's components remain valid across a restore.

**Pending MAU work must be plain data.**  Module->MAU requests carry a
``(module, tag)`` continuation instead of a Python closure precisely so
they can be checkpointed; a request still using a bare callback (the
MLR's load-time sequences do) makes the machine refuse to checkpoint
rather than silently capture a closure whose captured objects the
restore cannot rewind.

The captured boundary is a plain cycle boundary — callers who want the
paper's "drained commit boundary" (architectural state only, empty
ROB) can simply checkpoint when the pipeline is idle; the campaign
runner checkpoints mid-flight and relies on full microarchitectural
capture so forked and cold runs retire identical streams.
"""

import copy

__all__ = ["CheckpointError", "MachineCheckpoint", "capture", "restore",
           "warm"]


class CheckpointError(RuntimeError):
    """The machine is in a state the checkpoint layer cannot capture."""


#: Per-component fields that are wiring or derived caches, not mutable
#: machine state: left untouched by restore.
_PIPELINE_SKIP = frozenset((
    "memory", "hierarchy", "config", "rse", "check_injector", "mem_check",
    "_predecode",
))
_ENGINE_SKIP = frozenset((
    "memory", "hierarchy", "kernel", "queues", "ioq", "mau", "selfcheck",
    "modules",
))
_MAU_SKIP = frozenset(("memory", "hierarchy"))
_QUEUE_SKIP = frozenset(("name", "depth"))
_SELFCHECK_SKIP = frozenset(("engine",))
_MODULE_SKIP = frozenset(("engine", "name", "save_page_handler"))
_KERNEL_SKIP = frozenset((
    "pipeline", "memory", "rse", "config", "snapshot_provider",
))


class MachineCheckpoint:
    """An immutable whole-machine snapshot (see module docstring)."""

    __slots__ = ("cycle", "pages", "versions", "_state")

    def __init__(self, cycle, pages, versions, state):
        self.cycle = cycle          # pipeline cycle at capture
        self.pages = pages          # page index -> bytes (materialised only)
        self.versions = versions    # page index -> write version at capture
        self._state = state         # per-component deep-copied field dicts

    def __repr__(self):
        return "MachineCheckpoint(cycle=%d, pages=%d)" % (
            self.cycle, len(self.pages))


#: class -> tuple of instance attribute names, learned from the first
#: instance captured.  Reading ``obj.__dict__`` materialises a managed
#: dict on the instance, and CPython (3.11+) then permanently drops the
#: inline-values LOAD_ATTR fast path for that object — measured at ~20%
#: on the whole-pipeline simulation rate.  Caching the names per class
#: and walking them with ``getattr`` keeps every machine captured after
#: the first one (and the first one too, if :func:`warm` ran) at full
#: speed.  Safe because every captured class assigns all of its fields
#: in ``__init__``; a field that appears only on later instances would
#: be a bug this cache turns into a loud AttributeError on capture.
_FIELD_NAMES = {}


def _fields(obj, skip=frozenset()):
    cls = type(obj)
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = _FIELD_NAMES[cls] = tuple(obj.__dict__)
    return {name: getattr(obj, name) for name in names
            if name not in skip}


def _graft(obj, fields):
    for key, value in fields.items():
        setattr(obj, key, value)


def _pins(machine):
    """The identity-preserved singletons (deepcopy memo seeds)."""
    pipeline = machine.pipeline
    kernel = machine.kernel
    pins = [machine, machine.memory, machine.hierarchy, pipeline, kernel,
            pipeline.config, kernel.config]
    if pipeline._predecode is not None:
        pins.append(pipeline._predecode)
    rse = machine.rse
    if rse is not None:
        pins.extend((rse, rse.mau, rse.ioq, rse.queues, rse.selfcheck))
        pins.extend(rse.queues.all_queues())
        pins.extend(rse.modules.values())
    return pins


def _pending_requests(mau):
    pending = list(mau._queue)
    if mau._active is not None:
        pending.append(mau._active)
    return pending


def _collect(machine):
    state = {
        "pipeline": _fields(machine.pipeline, _PIPELINE_SKIP),
        "hierarchy": _fields(machine.hierarchy),
        "kernel": _fields(machine.kernel, _KERNEL_SKIP),
    }
    rse = machine.rse
    if rse is not None:
        state["rse"] = {
            "engine": _fields(rse, _ENGINE_SKIP),
            "mau": _fields(rse.mau, _MAU_SKIP),
            "ioq": _fields(rse.ioq),
            "selfcheck": _fields(rse.selfcheck, _SELFCHECK_SKIP),
            "queues": {queue.name: _fields(queue, _QUEUE_SKIP)
                       for queue in rse.queues.all_queues()},
            "modules": {module_id: _fields(module, _MODULE_SKIP)
                        for module_id, module in rse.modules.items()},
        }
    return state


def warm(machine):
    """Populate the field-name cache from a sacrificial *machine*.

    The first capture of each class reads ``__dict__`` to learn the
    field names, which permanently slows attribute access on that one
    instance (see :data:`_FIELD_NAMES`).  Callers that keep a long-lived
    trunk machine (the campaign fork engine) capture a same-shaped
    throwaway machine first so the trunk never pays that cost.
    """
    capture(machine)


def capture(machine):
    """Snapshot *machine*; returns a :class:`MachineCheckpoint`."""
    rse = machine.rse
    if rse is not None:
        holders = sorted({request.module_name
                          for request in _pending_requests(rse.mau)
                          if request.callback is not None})
        if holders:
            raise CheckpointError(
                "pending MAU request(s) from %s carry Python callbacks; "
                "only tag-based (module, tag) requests are checkpointable "
                "— drain the MAU or convert the module to on_mau_complete"
                % ", ".join(holders))
    pages, versions = machine.memory.capture_state()
    memo = {id(pin): pin for pin in _pins(machine)}
    state = copy.deepcopy(_collect(machine), memo)
    return MachineCheckpoint(machine.pipeline.cycle, pages, versions, state)


def restore(machine, checkpoint):
    """Rewind *machine* to *checkpoint* (reusable; returns *machine*)."""
    machine.memory.restore_state(checkpoint.pages, checkpoint.versions)
    # Re-copy the stored state with the same pins so the checkpoint
    # survives this restore untouched and can be restored again.
    memo = {id(pin): pin for pin in _pins(machine)}
    state = copy.deepcopy(checkpoint._state, memo)
    _graft(machine.pipeline, state["pipeline"])
    _graft(machine.hierarchy, state["hierarchy"])
    _graft(machine.kernel, state["kernel"])
    rse = machine.rse
    if rse is not None:
        if "rse" not in state:
            raise CheckpointError(
                "checkpoint was captured without an RSE attached")
        sub = state["rse"]
        _graft(rse, sub["engine"])
        _graft(rse.mau, sub["mau"])
        _graft(rse.ioq, sub["ioq"])
        _graft(rse.selfcheck, sub["selfcheck"])
        for queue in rse.queues.all_queues():
            _graft(queue, sub["queues"][queue.name])
        for module_id, fields in sub["modules"].items():
            _graft(rse.modules[module_id], fields)
    return machine
