"""Memory substrate: sparse main memory, caches, bus + arbiter, hierarchy.

The functional contents of memory live in :class:`~repro.memory.mainmem.MainMemory`.
Caches (:mod:`repro.memory.cache`) are *timing* models, exactly as in
SimpleScalar's ``sim-outorder``: they decide how many cycles an access
costs, while values are always read from / written to main memory.  The
bus (:mod:`repro.memory.bus`) models the pipelined memory interface whose
latency the paper perturbs when the RSE's Memory Access Unit is attached
(first chunk 18 -> 19 cycles, inter-chunk 2 -> 3; Section 5.2).
"""

from repro.memory.mainmem import MainMemory, MemoryFault
from repro.memory.cache import Cache, CacheStats
from repro.memory.bus import BusTiming, MemoryBus, BASELINE_TIMING, FRAMEWORK_TIMING
from repro.memory.hierarchy import MemoryHierarchy, CacheConfig, default_cache_configs

__all__ = [
    "MainMemory",
    "MemoryFault",
    "Cache",
    "CacheStats",
    "BusTiming",
    "MemoryBus",
    "BASELINE_TIMING",
    "FRAMEWORK_TIMING",
    "MemoryHierarchy",
    "CacheConfig",
    "default_cache_configs",
]
