"""Sparse, paged main memory with byte/half/word access.

A 32-bit physical address space backed lazily by 4 KB ``bytearray``
pages.  Little-endian, like the SimpleScalar host ISA.  The same object
serves the pipeline, the functional simulator, the kernel (page
checkpoints are literal copies of these pages) and the RSE's Memory
Access Unit.
"""

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1
ADDR_MASK = 0xFFFFFFFF


class MemoryFault(Exception):
    """An illegal memory access (bad alignment or a protection violation).

    The kernel turns these into thread faults; the MLR security argument
    is exactly that a foiled attack becomes such a fault (a crash) rather
    than a hijack.
    """

    def __init__(self, addr, reason):
        super().__init__("%s at 0x%08x" % (reason, addr))
        self.addr = addr
        self.reason = reason


class MainMemory:
    """Sparse 32-bit byte-addressable memory.

    Pages are materialised on first touch and zero-filled, so "fresh"
    memory reads as zero — convenient for ``.space`` data and stacks.

    Every store bumps a per-page counter in :attr:`write_versions`
    (pages never written do not appear; their version is 0).  Consumers
    that cache derived views of memory — the predecode cache in
    :mod:`repro.isa.predecode` is the canonical one — record the
    version at build time and revalidate against it, so self-modifying
    code, fault-injection corruption of the text segment, and page
    restores all invalidate correctly without the memory knowing who is
    caching.
    """

    def __init__(self):
        self._pages = {}
        self.write_versions = {}

    # ------------------------------------------------------------- pages

    def _page(self, addr):
        index = addr >> PAGE_SHIFT
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def page_numbers(self):
        """Page indices that have been materialised (for checkpoint tooling)."""
        return sorted(self._pages)

    def snapshot_page(self, page_index):
        """Return a copy of page *page_index* without materialising it.

        A never-touched page reads as zeros, and snapshotting one must
        not allocate it: a snapshot is an observation, and growing
        ``_pages`` as a side effect would make ``page_numbers()`` (and
        every consumer that iterates materialised pages, the checkpoint
        layer included) depend on snapshot history.
        """
        page = self._pages.get(page_index)
        if page is None:
            return bytes(PAGE_SIZE)
        return bytes(page)

    def restore_page(self, page_index, payload):
        """Overwrite page *page_index* with *payload* (must be PAGE_SIZE long)."""
        if len(payload) != PAGE_SIZE:
            raise ValueError("page payload must be %d bytes" % PAGE_SIZE)
        self._pages[page_index] = bytearray(payload)
        versions = self.write_versions
        versions[page_index] = versions.get(page_index, 0) + 1

    # -------------------------------------------------- whole-memory capture

    def capture_state(self):
        """Snapshot every materialised page plus the version map.

        Returns ``(pages, versions)`` where *pages* maps page index to
        an immutable ``bytes`` copy and *versions* is a copy of
        :attr:`write_versions`.  Never-touched pages are not captured —
        they read as zeros before and after, which is the copy-on-write
        half of the checkpoint layer: a checkpoint costs one page copy
        per *materialised* page, not one per addressable page.
        """
        return ({index: bytes(page) for index, page in self._pages.items()},
                dict(self.write_versions))

    def restore_state(self, pages, versions):
        """Rewind memory to a :meth:`capture_state` snapshot.

        Version bookkeeping is what keeps cached derived views (the
        predecode cache) correct across a rewind:

        * a page whose version is unchanged since capture was never
          written in the discarded timeline — its bytes are already
          right, so it is left alone and cached views of it stay valid;
        * a changed page gets the captured bytes back and a version
          *strictly above* every version the discarded timeline used
          (never the captured number again), so stale cached views can
          never revalidate;
        * a page materialised only after the capture is dropped, with
          the same monotonic bump if it had been written.
        """
        live = self._pages
        current = self.write_versions
        for index in set(live) | set(pages):
            captured_version = versions.get(index, 0)
            current_version = current.get(index, 0)
            payload = pages.get(index)
            if payload is None:
                # Materialised after the capture: forget it entirely.
                del live[index]
                if current_version:
                    current[index] = current_version + 1
            elif current_version != captured_version or index not in live:
                live[index] = bytearray(payload)
                current[index] = max(current_version, captured_version) + 1

    # ------------------------------------------------------------- bytes

    def load_bytes(self, addr, length):
        addr &= ADDR_MASK
        out = bytearray()
        while length > 0:
            offset = addr & PAGE_MASK
            chunk = min(length, PAGE_SIZE - offset)
            page = self._page(addr)
            out.extend(page[offset:offset + chunk])
            addr = (addr + chunk) & ADDR_MASK
            length -= chunk
        return bytes(out)

    def store_bytes(self, addr, payload):
        addr &= ADDR_MASK
        versions = self.write_versions
        view = memoryview(payload)
        while view:
            offset = addr & PAGE_MASK
            chunk = min(len(view), PAGE_SIZE - offset)
            page = self._page(addr)
            page[offset:offset + chunk] = view[:chunk]
            index = addr >> PAGE_SHIFT
            versions[index] = versions.get(index, 0) + 1
            addr = (addr + chunk) & ADDR_MASK
            view = view[chunk:]

    # ----------------------------------------------------- scalar accesses

    def load_word(self, addr):
        """Load a naturally-aligned 32-bit little-endian word."""
        if addr & 3:
            raise MemoryFault(addr, "unaligned word load")
        page = self._page(addr)
        offset = addr & PAGE_MASK
        return int.from_bytes(page[offset:offset + 4], "little")

    def store_word(self, addr, value):
        if addr & 3:
            raise MemoryFault(addr, "unaligned word store")
        page = self._page(addr)
        offset = addr & PAGE_MASK
        page[offset:offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")
        index = addr >> PAGE_SHIFT
        versions = self.write_versions
        versions[index] = versions.get(index, 0) + 1

    def load_half(self, addr):
        if addr & 1:
            raise MemoryFault(addr, "unaligned halfword load")
        page = self._page(addr)
        offset = addr & PAGE_MASK
        return int.from_bytes(page[offset:offset + 2], "little")

    def store_half(self, addr, value):
        if addr & 1:
            raise MemoryFault(addr, "unaligned halfword store")
        page = self._page(addr)
        offset = addr & PAGE_MASK
        page[offset:offset + 2] = (value & 0xFFFF).to_bytes(2, "little")
        index = addr >> PAGE_SHIFT
        versions = self.write_versions
        versions[index] = versions.get(index, 0) + 1

    def load_byte(self, addr):
        return self._page(addr)[addr & PAGE_MASK]

    def store_byte(self, addr, value):
        self._page(addr)[addr & PAGE_MASK] = value & 0xFF
        index = addr >> PAGE_SHIFT
        versions = self.write_versions
        versions[index] = versions.get(index, 0) + 1

    # ------------------------------------------------------------ strings

    def load_cstring(self, addr, limit=4096):
        """Read a NUL-terminated latin-1 string (debug / syscall helper).

        Scans whole page slices (one ``find`` per page) rather than one
        :meth:`load_byte` round trip per character.
        """
        out = bytearray()
        remaining = limit
        while remaining > 0:
            offset = addr & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            segment = self._page(addr)[offset:offset + chunk]
            nul = segment.find(0)
            if nul >= 0:
                out += segment[:nul]
                break
            out += segment
            addr = (addr + chunk) & ADDR_MASK
            remaining -= chunk
        return out.decode("latin-1")
