"""Set-associative cache timing model (write-back, write-allocate, LRU).

Matches SimpleScalar's cache module in spirit: the cache decides hit or
miss and tracks dirty state; actual data always lives in main memory.
The paper's simulated configuration (Figure 1) is:

========  ======  =============
il1       8 KB    direct-mapped
dl1       8 KB    direct-mapped
il2       64 KB   2-way
dl2       128 KB  2-way
========  ======  =============
"""


class CacheStats:
    """Counters reported in Table 4 (#accesses, miss rate)."""

    __slots__ = ("accesses", "hits", "misses", "writebacks")

    def __init__(self):
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def miss_rate(self):
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self):
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def snapshot(self):
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "miss_rate": self.miss_rate,
        }

    # Same shape; kept so pre-snapshot callers don't need a shim layer.
    as_dict = snapshot


class Cache:
    """One cache level.

    Sets are dicts ``tag -> dirty_flag`` whose insertion order is the LRU
    order (Python dicts preserve insertion order; re-inserting on access
    moves a tag to MRU position).  This gives true-LRU with O(1) hits.
    """

    def __init__(self, name, size_bytes, assoc, block_bytes):
        if size_bytes % (assoc * block_bytes):
            raise ValueError("cache geometry does not divide evenly")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_bytes = block_bytes
        self.num_sets = size_bytes // (assoc * block_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self._block_shift = block_bytes.bit_length() - 1
        self._set_mask = self.num_sets - 1
        self._sets = [dict() for __ in range(self.num_sets)]
        self.stats = CacheStats()

    def __deepcopy__(self, memo):
        """Hand-rolled clone: the generic machinery walks every resident
        tag of every set, which makes checkpoint capture/restore
        (:mod:`repro.checkpoint`) pay thousands of deepcopy dispatches
        per cache.  Set contents are int->bool, so a plain dict copy per
        set is already a deep copy.  Fields move via getattr/setattr —
        touching ``__dict__`` would materialise it and cost the original
        (and the clone) CPython's inline-values attribute fast path on
        the per-access hot loop."""
        cls = type(self)
        names = cls.__dict__.get("_COPY_FIELDS")
        if names is None:
            names = cls._COPY_FIELDS = tuple(self.__dict__)
        clone = object.__new__(cls)
        memo[id(self)] = clone
        for name in names:
            setattr(clone, name, getattr(self, name))
        clone._sets = [dict(block_set) for block_set in self._sets]
        stats = CacheStats()
        for field in CacheStats.__slots__:
            setattr(stats, field, getattr(self.stats, field))
        clone.stats = stats
        return clone

    # ------------------------------------------------------------ access

    def access(self, addr, is_write=False):
        """Access one block.  Returns ``(hit, writeback_block_addr_or_None)``.

        On a miss the block is allocated (write-allocate); if a dirty
        victim is evicted its block address is returned so the caller can
        charge a writeback transfer.
        """
        block = addr >> self._block_shift
        cache_set = self._sets[block & self._set_mask]
        stats = self.stats
        stats.accesses += 1
        if block in cache_set:
            stats.hits += 1
            dirty = cache_set.pop(block) or is_write
            cache_set[block] = dirty          # move to MRU
            return True, None
        stats.misses += 1
        writeback = None
        if len(cache_set) >= self.assoc:
            victim, dirty = next(iter(cache_set.items()))
            del cache_set[victim]
            if dirty:
                stats.writebacks += 1
                writeback = victim << self._block_shift
        cache_set[block] = is_write
        return False, writeback

    def snapshot(self):
        """This level's section of the machine snapshot document."""
        return self.stats.snapshot()

    def probe(self, addr):
        """Return True when the block containing *addr* is resident.

        Does not touch LRU state or statistics.
        """
        block = addr >> self._block_shift
        return block in self._sets[block & self._set_mask]

    def flush(self):
        """Invalidate every block; returns the number of dirty lines dropped."""
        dirty_lines = 0
        for cache_set in self._sets:
            dirty_lines += sum(1 for dirty in cache_set.values() if dirty)
            cache_set.clear()
        return dirty_lines

    def block_addr(self, addr):
        """Base address of the block containing *addr*."""
        return (addr >> self._block_shift) << self._block_shift

    def __repr__(self):
        return "Cache(%s: %dB, %d-way, %dB blocks)" % (
            self.name, self.size_bytes, self.assoc, self.block_bytes)
