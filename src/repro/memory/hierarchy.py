"""Composed cache hierarchy with the paper's simulated configuration.

Figure 1 of the paper lists split L1 and split L2 caches:

=========  =======  ======  ===========
cache      size     assoc   block
=========  =======  ======  ===========
il1        8 KB     1-way   32 B
dl1        8 KB     1-way   32 B
il2        64 KB    2-way   32 B
dl2        128 KB   2-way   32 B
=========  =======  ======  ===========

Hit latencies are 1 cycle (L1) and 6 cycles (L2); an L2 miss performs a
pipelined block transfer over the :class:`~repro.memory.bus.MemoryBus`
(18 + 2/chunk baseline, 19 + 3/chunk with the RSE arbiter attached).
"""

from repro.memory.bus import MemoryBus
from repro.memory.cache import Cache

L1_HIT_LATENCY = 1
L2_HIT_LATENCY = 6
DEFAULT_BLOCK_BYTES = 32


class CacheConfig:
    """Geometry for one cache level."""

    __slots__ = ("name", "size_bytes", "assoc", "block_bytes")

    def __init__(self, name, size_bytes, assoc, block_bytes=DEFAULT_BLOCK_BYTES):
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_bytes = block_bytes

    def build(self):
        return Cache(self.name, self.size_bytes, self.assoc, self.block_bytes)


def default_cache_configs():
    """The paper's simulated cache configuration (Figure 1)."""
    return {
        "il1": CacheConfig("il1", 8 * 1024, 1),
        "dl1": CacheConfig("dl1", 8 * 1024, 1),
        "il2": CacheConfig("il2", 64 * 1024, 2),
        "dl2": CacheConfig("dl2", 128 * 1024, 2),
    }


class MemoryHierarchy:
    """Split two-level cache hierarchy over one shared memory bus.

    All methods take the current cycle and return the cycle at which the
    access completes, so bus occupancy (and therefore MAU contention) is
    modelled naturally.
    """

    def __init__(self, bus_timing, configs=None):
        configs = configs or default_cache_configs()
        self.il1 = configs["il1"].build()
        self.dl1 = configs["dl1"].build()
        self.il2 = configs["il2"].build()
        self.dl2 = configs["dl2"].build()
        self.bus = MemoryBus(bus_timing)
        self.l1_latency = L1_HIT_LATENCY
        self.l2_latency = L2_HIT_LATENCY

    # ------------------------------------------------------------- access

    def _access(self, l1, l2, now, addr, is_write):
        hit, __ = l1.access(addr, is_write)
        done = now + self.l1_latency
        if hit:
            return done
        hit, writeback = l2.access(addr, is_write=False)
        done += self.l2_latency
        if hit:
            return done
        done = self.bus.cpu_transfer(done, l2.block_bytes)
        if writeback is not None:
            # The dirty victim drains after the demand fill completes.
            self.bus.cpu_transfer(done, l2.block_bytes)
        return done

    def ifetch(self, now, addr):
        """Instruction fetch of one block through il1/il2."""
        return self._access(self.il1, self.il2, now, addr, is_write=False)

    def dload(self, now, addr):
        """Data load through dl1/dl2."""
        return self._access(self.dl1, self.dl2, now, addr, is_write=False)

    def dstore(self, now, addr):
        """Data store (write-back, write-allocate) through dl1/dl2."""
        return self._access(self.dl1, self.dl2, now, addr, is_write=True)

    def mau_access(self, now, nbytes):
        """Memory access on behalf of the RSE's MAU.

        Bypasses the caches entirely (Section 3.2: framework accesses
        "do not pollute the cache with data that is irrelevant to the
        application") and arbitrates for the bus at CPU-loses-nothing
        priority.
        """
        return self.bus.mau_transfer(now, nbytes)

    # -------------------------------------------------------------- stats

    def snapshot(self):
        """The memory section of the machine snapshot document."""
        return {
            "il1": self.il1.snapshot(),
            "dl1": self.dl1.snapshot(),
            "il2": self.il2.snapshot(),
            "dl2": self.dl2.snapshot(),
            "bus": self.bus.snapshot(),
        }

    def reset_stats(self):
        for cache in (self.il1, self.dl1, self.il2, self.dl2):
            cache.stats.reset()
        self.bus.reset_stats()
