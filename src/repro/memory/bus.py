"""Memory bus timing, and the arbiter shared by the pipeline and the MAU.

Memory access is pipelined (Section 4.3): the first chunk (one bus width)
of a transfer arrives after a long initial latency and each subsequent
chunk after a short inter-chunk latency.  The paper's evaluation uses

* baseline:   first chunk 18 cycles, inter-chunk 2 cycles;
* framework:  first chunk 19 cycles, inter-chunk 3 cycles —
  the +1 cycle being the arbiter inserted between the L2 caches and
  memory so the RSE's Memory Access Unit (MAU) can share the bus
  (Table 3 rationale: arbitrating on the rarely-used L2<->memory path
  rather than the hot L1<->CPU path).

The :class:`MemoryBus` also models *occupancy*: concurrent transfers
serialise, and the pipeline always wins arbitration against the MAU.
"""


class BusTiming:
    """Latency parameters for the pipelined memory interface."""

    __slots__ = ("first_chunk", "inter_chunk", "bus_width")

    def __init__(self, first_chunk, inter_chunk, bus_width=8):
        self.first_chunk = first_chunk
        self.inter_chunk = inter_chunk
        self.bus_width = bus_width

    def transfer_latency(self, nbytes):
        """Cycles to move *nbytes* from/to memory."""
        if nbytes <= 0:
            return 0
        chunks = -(-nbytes // self.bus_width)
        return self.first_chunk + (chunks - 1) * self.inter_chunk

    def __repr__(self):
        return "BusTiming(first=%d, inter=%d, width=%d)" % (
            self.first_chunk, self.inter_chunk, self.bus_width)


#: Section 5.2: baseline memory timing (no RSE attached).
BASELINE_TIMING = BusTiming(first_chunk=18, inter_chunk=2)
#: Section 5.2: timing with the RSE arbiter on the memory path (+1 cycle).
FRAMEWORK_TIMING = BusTiming(first_chunk=19, inter_chunk=3)


class MemoryBus:
    """Shared, occupancy-tracked memory bus with pipeline-priority arbitration.

    Callers ask for a transfer starting at the current cycle; the bus
    returns the completion cycle, accounting for an in-flight transfer.
    The pipeline (CPU) path is called first each machine cycle, which
    realises the paper's "main pipeline has higher priority" rule: an MAU
    request issued in the same cycle queues behind the CPU's.
    """

    FIELDS = ("timing", "busy_until", "cpu_transfers", "mau_transfers",
              "mau_wait_cycles")

    def __init__(self, timing):
        self.timing = timing
        self.busy_until = 0
        self.cpu_transfers = 0
        self.mau_transfers = 0
        self.mau_wait_cycles = 0

    def __deepcopy__(self, memo):
        # ``timing`` is an immutable BusTiming shared by reference; the
        # rest are ints.  getattr/setattr (never ``__dict__``) preserves
        # the inline-values attribute fast path on the per-miss hot
        # path for both the original and the checkpoint clone.
        clone = object.__new__(type(self))
        memo[id(self)] = clone
        for name in self.FIELDS:
            setattr(clone, name, getattr(self, name))
        return clone

    def cpu_transfer(self, now, nbytes):
        """Start a pipeline-side transfer; returns its completion cycle."""
        start = max(now, self.busy_until)
        done = start + self.timing.transfer_latency(nbytes)
        self.busy_until = done
        self.cpu_transfers += 1
        return done

    def mau_transfer(self, now, nbytes):
        """Start an MAU-side transfer; returns its completion cycle.

        Waits for any in-flight transfer (the CPU always schedules first
        within a cycle, so the pipeline wins simultaneous requests).
        """
        start = max(now, self.busy_until)
        self.mau_wait_cycles += start - now
        done = start + self.timing.transfer_latency(nbytes)
        self.busy_until = done
        self.mau_transfers += 1
        return done

    def snapshot(self):
        """The bus's section of the machine snapshot document."""
        return {
            "cpu_transfers": self.cpu_transfers,
            "mau_transfers": self.mau_transfers,
            "mau_wait_cycles": self.mau_wait_cycles,
        }

    def reset_stats(self):
        self.cpu_transfers = 0
        self.mau_transfers = 0
        self.mau_wait_cycles = 0
