"""The kernel: process loading, scheduling, syscalls, exceptions, recovery.

The kernel drives the pipeline through its event interface: the pipeline
simulates until a syscall / fault / timer / halt / CHECK-error surfaces,
the kernel handles it (charging handler cycles), and resumes — possibly
in a different thread.  Context switches only ever happen on a drained
pipeline, matching Table 3's argument that CHECK instructions never
straddle a context switch.
"""

from repro.kernel.checkpoints import CheckpointStore, RecoveryImpossible
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.syscalls import (
    NRECV_EMPTY,
    NRECV_POLL,
    RECV_EXHAUSTED,
    SYS_CYCLE,
    SYS_EXIT,
    SYS_GETTID,
    SYS_MMAP,
    SYS_MPROTECT,
    SYS_NRECV,
    SYS_NSEND,
    SYS_PRINT_INT,
    SYS_PUTC,
    SYS_JOIN,
    SYS_RAND,
    SYS_RECV,
    SYS_SLEEP,
    SYS_SBRK,
    SYS_SEND,
    SYS_SPAWN,
    SYS_YIELD,
    perm_string,
)
from repro.kernel.threads import Thread, ThreadState
from repro.memory.mainmem import PAGE_SHIFT, PAGE_SIZE
from repro.pipeline.core import EventKind
from repro.program.loader import Loader
from repro.rse.check import MODULE_DDT

MASK32 = 0xFFFFFFFF

#: Provisional wake cycle for a thread blocked in SYS_NRECV with nothing
#: in flight.  Far beyond any reachable cycle; replaced by the actual
#: delivery cycle the moment a datagram is queued (``net_refresh``).
NET_WAIT = 1 << 62


class ProcessExit(Exception):
    """Raised internally to unwind when the whole process terminates."""

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


class KernelConfig:
    """Kernel cost model and policy knobs.

    Cost/latency knobs are validated here, in one place, so nothing
    downstream has to re-check them: ``io_recv_jitter=0`` is legal (the
    jitter draw is skipped entirely — no ``% 0``), negative latencies
    and costs are rejected at construction instead of surfacing as
    time-travelling wake cycles mid-run.
    """

    def __init__(self,
                 quantum_cycles=5000,
                 context_switch_cost=60,
                 syscall_cost=20,
                 savepage_cost=None,          # None: derived from bus timing
                 io_recv_latency=1500,
                 io_recv_jitter=3000,
                 io_send_cost=150,
                 thread_stack_bytes=16 * 1024,
                 rng_seed=0x5EED,
                 checkpoint_max=100_000,
                 checkpoint_gc_age=None):
        if quantum_cycles < 1:
            raise ValueError("quantum_cycles must be >= 1, got %r"
                             % (quantum_cycles,))
        for name, value in (("context_switch_cost", context_switch_cost),
                            ("syscall_cost", syscall_cost),
                            ("io_recv_latency", io_recv_latency),
                            ("io_recv_jitter", io_recv_jitter),
                            ("io_send_cost", io_send_cost)):
            if value < 0:
                raise ValueError("%s must be >= 0, got %r" % (name, value))
        if savepage_cost is not None and savepage_cost < 0:
            raise ValueError("savepage_cost must be >= 0 or None, got %r"
                             % (savepage_cost,))
        self.quantum_cycles = quantum_cycles
        self.context_switch_cost = context_switch_cost
        self.syscall_cost = syscall_cost
        self.savepage_cost = savepage_cost
        self.io_recv_latency = io_recv_latency
        self.io_recv_jitter = io_recv_jitter
        self.io_send_cost = io_send_cost
        self.thread_stack_bytes = thread_stack_bytes
        self.rng_seed = rng_seed
        self.checkpoint_max = checkpoint_max
        self.checkpoint_gc_age = checkpoint_gc_age


class RunResult:
    """Outcome of :meth:`Kernel.run`.

    ``snapshot`` carries the machine's full telemetry document
    (``Machine.snapshot()``) taken when the run stopped — None for
    kernels driven outside a :class:`~repro.system.Machine`.
    """

    def __init__(self, reason, cycles, event=None, snapshot=None):
        self.reason = reason          # "halt" | "all_exited" | "fault" |
                                      # "check_error" | "max_cycles" |
                                      # "recovery_impossible"
        self.cycles = cycles
        self.event = event
        self.snapshot = snapshot

    def __repr__(self):
        return "RunResult(%s, cycles=%d)" % (self.reason, self.cycles)


class Kernel:
    """The operating system of the simulated machine."""

    def __init__(self, pipeline, memory, rse=None, config=None):
        self.pipeline = pipeline
        self.memory = memory
        self.rse = rse
        self.config = config or KernelConfig()
        self.page_perms = {}
        self.threads = {}
        self.scheduler = RoundRobinScheduler(self.config.quantum_cycles)
        self.current = None
        self.checkpoints = CheckpointStore(self.config.checkpoint_max,
                                           self.config.checkpoint_gc_age)
        self.loaded = None
        self.brk = 0
        self.output = []              # (kind, value) from print syscalls
        self.responses = {}           # request id -> response value
        self.requests_total = 0
        self._next_request = 0
        #: Optional open-loop arrival schedule: sorted absolute cycles,
        #: one per provisioned request (set_request_source).
        self.request_arrivals = None
        #: NetworkInterface wired in by a fleet's NetworkDevice (attach);
        #: None on a standalone machine.  Deliberately NOT part of the
        #: checkpointable kernel state (see checkpoint._KERNEL_SKIP).
        self.netif = None
        self._next_tid = 1
        self._next_stack_index = 1
        self._rng_state = self.config.rng_seed & MASK32
        self.recovery = None          # RecoveryManager, when enabled
        self.recovery_reports = []
        self.detections = []          # CHECK_ERROR events observed
        self.check_error_policy = "terminate"          # or "retry"
        self.faults = []
        self.os_heartbeat_id = None
        self.context_switches = 0
        self.syscalls_handled = 0
        self.timer_preemptions = 0
        #: Set by Machine: zero-arg callable returning the machine-wide
        #: snapshot document, attached to every RunResult.
        self.snapshot_provider = None
        pipeline.mem_check = self._mem_check
        if rse is not None:
            rse.kernel = self
            ddt = rse.modules.get(MODULE_DDT)
            if ddt is not None:
                ddt.save_page_handler = self.checkpoint_page

    # ------------------------------------------------------------- processes

    def load_process(self, image, name="main"):
        """Load *image* and create its main thread."""
        loaded = Loader(self.memory).load(image)
        self.loaded = loaded
        self.page_perms.update(loaded.page_perms)
        self.brk = image.layout.heap_base + PAGE_SIZE
        regs = [0] * 32
        regs[29] = loaded.initial_sp
        regs[28] = loaded.initial_gp
        thread = self._create_thread(loaded.entry, regs, name)
        return thread

    def _create_thread(self, pc, regs, name):
        tid = self._next_tid
        self._next_tid += 1
        thread = Thread(tid, pc, regs, name=name,
                        spawn_cycle=self.pipeline.cycle)
        self.threads[tid] = thread
        self.scheduler.make_ready(thread)
        if self.rse is not None:
            ddt = self.rse.modules.get(MODULE_DDT)
            if ddt is not None:
                ddt.register_thread(tid)
        return thread

    def spawn_thread(self, entry_pc, arg=0, name=None):
        """Kernel-side thread creation (also backs SYS_SPAWN)."""
        if self.loaded is None:
            raise RuntimeError("no process loaded")
        layout = self.loaded.image.layout
        self._next_stack_index += 1
        sp = (layout.stack_top
              - self._next_stack_index * self.config.thread_stack_bytes)
        if sp - self.config.thread_stack_bytes < layout.stack_base:
            raise RuntimeError("out of stack space for new thread")
        regs = [0] * 32
        regs[29] = sp & ~0x7
        regs[28] = self.loaded.initial_gp
        regs[4] = arg & MASK32
        return self._create_thread(entry_pc, regs, name)

    def alive_threads(self):
        return [t for t in self.threads.values() if t.alive]

    # ------------------------------------------------------------------ run

    def run(self, max_cycles=50_000_000):
        """Run the machine until the process ends or *max_cycles* elapse.

        The returned :class:`RunResult` carries the machine snapshot
        document when the kernel is part of a wired
        :class:`~repro.system.Machine`.
        """
        result = self._run(max_cycles)
        if self.snapshot_provider is not None:
            result.snapshot = self.snapshot_provider()
        return result

    def run_slice(self, max_cycles):
        """Run for at most *max_cycles* without attaching a snapshot.

        The fleet bridge's hot path: it resumes a node thousands of
        times per run, and a full ``Machine.snapshot()`` per slice would
        dominate the cost.  Never overshoots the deadline — an idle
        kernel advances exactly to it and reports ``max_cycles``.
        """
        return self._run(max_cycles)

    def _run(self, max_cycles):
        pipeline = self.pipeline
        deadline = pipeline.cycle + max_cycles
        try:
            while True:
                if self.current is None:
                    scheduled = self._schedule(deadline)
                    if scheduled is False:
                        raise ProcessExit("all_exited")
                    if scheduled is None:
                        # Every thread sleeps past the deadline; the
                        # idle advance stopped exactly there.
                        return RunResult("max_cycles", pipeline.cycle)
                remaining = deadline - pipeline.cycle
                if remaining <= 0:
                    return RunResult("max_cycles", pipeline.cycle)
                event = pipeline.run(max_cycles=remaining)
                self._heartbeat_os()
                kind = event.kind
                if kind is EventKind.SYSCALL:
                    self._handle_syscall(event)
                elif kind is EventKind.TIMER:
                    self._handle_timer(event)
                elif kind is EventKind.HALT:
                    if self.rse is not None:
                        self.rse.drain()          # flush latched Commit_Out
                    return RunResult("halt", pipeline.cycle, event)
                elif kind is EventKind.FAULT:
                    self._handle_fault(event)
                elif kind is EventKind.CHECK_ERROR:
                    result = self._handle_check_error(event)
                    if result is not None:
                        return result
                elif kind is EventKind.MAX_CYCLES:
                    return RunResult("max_cycles", pipeline.cycle)
        except ProcessExit as exit_info:
            return RunResult(exit_info.reason, pipeline.cycle)

    # ------------------------------------------------------------ scheduling

    def _schedule(self, deadline=None):
        """Pick the next thread and switch the pipeline onto it.

        Returns True when a thread was scheduled, False when no thread
        can ever run again (process over), and None when every thread
        sleeps past *deadline* — in that case the pipeline is advanced
        exactly to the deadline, never beyond it, so a bounded run
        (``run_slice``) stays inside its cycle budget even while idle.
        """
        pipeline = self.pipeline
        while True:
            self._wake_sleepers(pipeline.cycle)
            thread = self.scheduler.pick_next()
            if thread is not None:
                break
            sleepers = [t for t in self.threads.values()
                        if t.state is ThreadState.BLOCKED]
            if not sleepers:
                return False
            # Idle until the earliest sleeper wakes, capped at deadline.
            wake = min(t.wake_cycle for t in sleepers)
            if deadline is not None and wake > deadline:
                if deadline > pipeline.cycle:
                    pipeline.advance_cycles(deadline - pipeline.cycle)
                return None
            if wake > pipeline.cycle:
                pipeline.advance_cycles(wake - pipeline.cycle)
        pipeline.advance_cycles(self.config.context_switch_cost)
        self.context_switches += 1
        self.current = thread
        pipeline.regs[:] = thread.regs
        pipeline.resume(thread.pc)
        pipeline.timer_deadline = pipeline.cycle + self.config.quantum_cycles
        if self.rse is not None:
            self.rse.set_current_thread(thread.tid)
        return True

    def _wake_sleepers(self, cycle):
        for thread in self.threads.values():
            if (thread.state is ThreadState.BLOCKED
                    and thread.wake_cycle <= cycle):
                self.scheduler.make_ready(thread)

    def _save_current(self, pc):
        thread = self.current
        thread.pc = pc
        thread.regs = list(self.pipeline.regs)
        self.current = None

    def _handle_timer(self, event):
        self.timer_preemptions += 1
        thread = self.current
        self._save_current(event.pc)
        self.scheduler.make_ready(thread)

    # -------------------------------------------------------------- syscalls

    def _handle_syscall(self, event):
        self.syscalls_handled += 1
        pipeline = self.pipeline
        pipeline.advance_cycles(self.config.syscall_cost)
        regs = pipeline.regs
        number = regs[2]
        a0, a1, a2 = regs[4], regs[5], regs[6]
        next_pc = (event.pc + 4) & MASK32
        thread = self.current

        if number == SYS_EXIT:
            thread.exit_code = a0
            self._terminate(thread)          # clears self.current
            return
        if number == SYS_SPAWN:
            child = self.spawn_thread(a0, arg=a1)
            regs[2] = child.tid
        elif number == SYS_YIELD:
            self._save_current(next_pc)
            self.scheduler.make_ready(thread)
            return
        elif number == SYS_GETTID:
            regs[2] = thread.tid
        elif number == SYS_SBRK:
            regs[2] = self._sbrk(a0)
        elif number == SYS_PRINT_INT:
            self.output.append(("int", a0))
        elif number == SYS_PUTC:
            self.output.append(("char", chr(a0 & 0xFF)))
        elif number == SYS_RECV:
            if self._next_request >= self.requests_total:
                regs[2] = RECV_EXHAUSTED
            else:
                arrivals = self.request_arrivals
                if (arrivals is not None
                        and arrivals[self._next_request] > pipeline.cycle):
                    # Open-loop source: the next request hasn't arrived
                    # yet.  Sleep until it does, then retry the syscall.
                    thread.state = ThreadState.BLOCKED
                    thread.wake_cycle = arrivals[self._next_request]
                    self._save_current(event.pc)
                    return
                request_id = self._next_request
                self._next_request += 1
                regs[2] = request_id
                # io_recv_jitter == 0 means "no jitter": the modulus is
                # never taken with a zero divisor (KernelConfig rejects
                # negative values outright).
                latency = self.config.io_recv_latency
                if self.config.io_recv_jitter:
                    latency += self._rand() % self.config.io_recv_jitter
                thread.state = ThreadState.BLOCKED
                thread.wake_cycle = pipeline.cycle + latency
                self._save_current(next_pc)
                return
        elif number == SYS_SEND:
            self.responses[a0] = a1
            pipeline.advance_cycles(self.config.io_send_cost)
        elif number == SYS_MMAP:
            self._map_range(a0, a1, "rw")
        elif number == SYS_MPROTECT:
            self._map_range(a0, a1, perm_string(a2))
        elif number == SYS_CYCLE:
            regs[2] = pipeline.cycle & MASK32
        elif number == SYS_RAND:
            regs[2] = self._rand()
        elif number == SYS_SLEEP:
            thread.state = ThreadState.BLOCKED
            thread.wake_cycle = pipeline.cycle + max(a0, 1)
            self._save_current(next_pc)
            return
        elif number == SYS_NSEND:
            if self.netif is None:
                self._fault_thread(event.pc, "nsend with no network device")
                return
            pipeline.advance_cycles(self.config.io_send_cost)
            regs[2] = self.netif.send(a0, a1, pipeline.cycle)
        elif number == SYS_NRECV:
            if self.netif is None:
                self._fault_thread(event.pc, "nrecv with no network device")
                return
            thread.net_waiting = False
            delivery = self.netif.poll(pipeline.cycle)
            if delivery is not None:
                regs[2], regs[5] = delivery
            elif a0 & NRECV_POLL:
                regs[2] = NRECV_EMPTY
            else:
                # Block until something is deliverable, then retry the
                # syscall (same re-execute idiom as SYS_JOIN).  The wake
                # cycle is provisional: net_refresh() pulls it in when
                # a datagram is queued for us.
                thread.state = ThreadState.BLOCKED
                thread.net_waiting = True
                upcoming = self.netif.next_delivery()
                thread.wake_cycle = (NET_WAIT if upcoming is None
                                     else max(upcoming, pipeline.cycle + 1))
                self._save_current(event.pc)
                return
        elif number == SYS_JOIN:
            target = self.threads.get(a0)
            if target is None:
                regs[2] = MASK32          # unknown tid
            elif not target.alive:
                regs[2] = (target.exit_code or 0) & MASK32
            else:
                # Re-issue the join after a short block; the syscall
                # retries until the target terminates.
                thread.state = ThreadState.BLOCKED
                thread.wake_cycle = pipeline.cycle + 200
                self._save_current(event.pc)          # re-execute syscall
                return
        else:
            self._fault_thread(event.pc, "unknown syscall %d" % number)
            return
        pipeline.resume(next_pc)

    def _sbrk(self, nbytes):
        old = self.brk
        new = old + nbytes
        self._map_range(old, max(nbytes, 0), "rw")
        self.brk = (new + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        return old

    def _map_range(self, addr, length, perms):
        if length <= 0:
            return
        first = addr >> PAGE_SHIFT
        last = (addr + length - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            self.page_perms[page] = perms

    def _rand(self):
        self._rng_state = (self._rng_state * 1103515245 + 12345) & MASK32
        return self._rng_state >> 8

    # ----------------------------------------------------- faults & recovery

    def _handle_fault(self, event):
        self._fault_thread(event.pc, event.cause)

    def _fault_thread(self, pc, cause):
        thread = self.current
        thread.fault = (pc, cause)
        self.faults.append((thread.tid, pc, cause))
        self._terminate(thread)
        self.current = None
        if self.recovery is not None:
            try:
                report = self.recovery.recover(thread.tid,
                                               self.pipeline.cycle)
            except RecoveryImpossible:
                for other in self.alive_threads():
                    self._terminate(other)
                raise ProcessExit("recovery_impossible")
            self.recovery_reports.append(report)
            return          # survivors keep running via the main loop
        if not self.alive_threads():
            raise ProcessExit("fault")
        # No recovery support: the conservative kill-all policy the paper
        # motivates DDT against.
        for other in self.alive_threads():
            self._terminate(other)
        raise ProcessExit("fault")

    def _terminate(self, thread):
        thread.state = ThreadState.TERMINATED
        self.scheduler.remove(thread)
        if thread is self.current:
            self.current = None

    def terminate_thread(self, tid, by_recovery=False):
        """Terminate *tid* (recovery manager path)."""
        thread = self.threads[tid]
        thread.killed_by_recovery = by_recovery
        self._terminate(thread)

    def _handle_check_error(self, event):
        self.detections.append(event)
        if self.check_error_policy == "retry":
            # Paper (Table 2): the pipeline is flushed and restarts at the
            # same CHECK instruction to attempt recovery.
            self.pipeline.resume(event.pc)
            return None
        thread = self.current
        if thread is not None:
            thread.fault = (event.pc, "check error: %s" % event.cause)
            self._terminate(thread)
        return RunResult("check_error", self.pipeline.cycle, event)

    # ---------------------------------------------------- SavePage handling

    def checkpoint_page(self, page, writer_tid, cycle):
        """OS SavePage exception handler: snapshot the page's pre-image.

        Returns the handler cost in cycles; the pipeline freezes for that
        long ("the process is suspended, and no subsequent stores can be
        executed until the entire memory page has been saved").
        """
        self.checkpoints.save_from(self.memory, page, cycle, writer_tid)
        if self.config.checkpoint_gc_age is not None:
            self.checkpoints.garbage_collect(cycle)
        cost = self.config.savepage_cost
        if cost is None:
            timing = self.pipeline.hierarchy.bus.timing
            cost = 2 * timing.transfer_latency(PAGE_SIZE)
        return cost

    # ----------------------------------------------------------------- stats

    def snapshot(self):
        """The kernel's section of the machine snapshot document."""
        return {
            "threads": {
                "created": len(self.threads),
                "alive": len(self.alive_threads()),
            },
            "context_switches": self.context_switches,
            "syscalls": self.syscalls_handled,
            "timer_preemptions": self.timer_preemptions,
            "faults": len(self.faults),
            "detections": len(self.detections),
            "checkpoints": {
                "saves_total": self.checkpoints.saves_total,
                "gc_removed": self.checkpoints.gc_removed,
            },
            "requests": {
                "provisioned": self.requests_total,
                "received": self._next_request,
                "responded": len(self.responses),
            },
            "net": (self.netif.snapshot() if self.netif is not None
                    else None),
            "output_events": len(self.output),
        }

    def reset_stats(self):
        """Zero scheduling/syscall counters (machine-wide warm-up reset)."""
        self.context_switches = 0
        self.syscalls_handled = 0
        self.timer_preemptions = 0

    # --------------------------------------------------------------- helpers

    def set_request_source(self, count, arrivals=None):
        """Provision *count* network requests for SYS_RECV.

        Request ids are dense, starting at 0, so the id space must stay
        clear of the ``RECV_EXHAUSTED`` sentinel: a source whose id
        range would include 0xFFFFFFFF is refused here, at provision
        time, instead of silently handing a guest an id it cannot tell
        apart from exhaustion.

        *arrivals*, when given, makes the source open-loop: a sorted
        sequence of absolute cycles, one per request; SYS_RECV blocks
        until the next request's arrival cycle before accepting it.
        """
        if count > RECV_EXHAUSTED:
            raise ValueError(
                "request source of %d would provision id 0x%08X, which is "
                "reserved as the RECV_EXHAUSTED sentinel" %
                (count, RECV_EXHAUSTED))
        if arrivals is not None:
            arrivals = tuple(arrivals)
            if len(arrivals) != count:
                raise ValueError("arrival schedule has %d entries for %d "
                                 "requests" % (len(arrivals), count))
            if any(b < a for a, b in zip(arrivals, arrivals[1:])):
                raise ValueError("arrival schedule must be non-decreasing")
            if arrivals and arrivals[0] < 0:
                raise ValueError("arrival cycles must be >= 0")
        self.requests_total = count
        self.request_arrivals = arrivals
        self._next_request = 0
        self.responses.clear()

    # ------------------------------------------------------------ networking

    def net_refresh(self):
        """Re-aim threads blocked in SYS_NRECV at the next delivery.

        Called by the network device after queueing a datagram for this
        node: a blocked receiver's provisional wake cycle (possibly
        NET_WAIT, i.e. "never") is pulled in to the actual delivery
        cycle so the retry happens exactly when the datagram lands.
        """
        if self.netif is None:
            return
        upcoming = self.netif.next_delivery()
        if upcoming is None:
            return
        wake = max(upcoming, self.pipeline.cycle + 1)
        for thread in self.threads.values():
            if (thread.state is ThreadState.BLOCKED and thread.net_waiting
                    and thread.wake_cycle > wake):
                thread.wake_cycle = wake

    def net_idle(self):
        """True when this node cannot progress without a datagram.

        Used by the fleet bridge for distributed-stall detection: every
        alive thread is blocked waiting on the network with nothing in
        flight toward us.
        """
        if self.current is not None or self.scheduler.has_ready():
            return False
        alive = self.alive_threads()
        if not alive:
            return False
        return all(thread.state is ThreadState.BLOCKED
                   and thread.wake_cycle >= NET_WAIT
                   for thread in alive)

    def _heartbeat_os(self):
        if self.os_heartbeat_id is not None and self.rse is not None:
            from repro.rse.check import MODULE_AHBM
            ahbm = self.rse.modules.get(MODULE_AHBM)
            if ahbm is not None:
                ahbm.beat(self.os_heartbeat_id, self.pipeline.cycle)

    def _mem_check(self, addr, size, kind):
        if self.loaded is None:
            return None          # no process: nothing to enforce (bare runs)
        page = addr >> PAGE_SHIFT
        perms = self.page_perms.get(page)
        if perms is None:
            return "access to unmapped address 0x%08x" % addr
        if kind not in perms:
            return "%s-access violation at 0x%08x (page is %s)" % (
                kind, addr, perms)
        return None
