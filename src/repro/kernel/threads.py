"""Thread control blocks."""

import enum


class ThreadState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    TERMINATED = "terminated"


class Thread:
    """One kernel thread: saved architectural state plus scheduling info."""

    __slots__ = ("tid", "name", "regs", "pc", "state", "wake_cycle",
                 "exit_code", "fault", "killed_by_recovery", "spawn_cycle",
                 "stack_base", "net_waiting")

    def __init__(self, tid, pc, regs, name=None, spawn_cycle=0, stack_base=0):
        self.tid = tid
        self.name = name or "thread-%d" % tid
        self.regs = list(regs)
        self.pc = pc
        self.state = ThreadState.READY
        self.wake_cycle = 0           # earliest cycle a BLOCKED thread wakes
        self.exit_code = None
        self.fault = None             # (pc, cause) when the thread faulted
        self.killed_by_recovery = False
        self.spawn_cycle = spawn_cycle
        self.stack_base = stack_base
        self.net_waiting = False      # BLOCKED in SYS_NRECV; wake_cycle is
                                      # provisional until a datagram lands

    @property
    def alive(self):
        return self.state is not ThreadState.TERMINATED

    def __repr__(self):
        return "<Thread %d %s %s pc=0x%08x>" % (
            self.tid, self.name, self.state.value, self.pc)
