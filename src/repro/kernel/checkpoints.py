"""Page checkpoint store (Section 4.2.1 / 4.2.2).

SavePage exceptions checkpoint the *pre-image* of a page before a thread
that is not its write-owner modifies it.  Snapshots live "in main
memory" (here: in the store, charged at main-memory copy cost).  Two
space-management policies from the paper are implemented:

* a capacity bound with **garbage collection** using a time-based
  threshold;
* **history information for deleted pages**: if recovery later needs a
  deleted snapshot, recovery is impossible and the entire process must
  be terminated ("the recovery algorithm terminates the entire process
  due to insufficient information").
"""


class RecoveryImpossible(Exception):
    """A page needed for rollback was garbage-collected."""

    def __init__(self, page):
        super().__init__("snapshot for page 0x%x was garbage-collected" % page)
        self.page = page


class PageSnapshot:
    """Pre-image of one page, taken when *writer* became its write-owner."""

    __slots__ = ("page", "cycle", "writer", "data")

    def __init__(self, page, cycle, writer, data):
        self.page = page
        self.cycle = cycle
        self.writer = writer
        self.data = data

    def __repr__(self):
        return "PageSnapshot(page=0x%x, cycle=%d, writer=%s)" % (
            self.page, self.cycle, self.writer)


class CheckpointStore:
    """Per-page snapshot history with GC and deleted-page tracking."""

    def __init__(self, max_snapshots=100_000, gc_age_cycles=None):
        self.max_snapshots = max_snapshots
        self.gc_age_cycles = gc_age_cycles
        self._history = {}          # page -> list of PageSnapshot (oldest first)
        self._deleted_pages = set()
        self.saves_total = 0
        self.gc_removed = 0

    # ------------------------------------------------------------------ save

    def save(self, page, cycle, writer, data):
        """Record the pre-image *data* of *page*."""
        snapshot = PageSnapshot(page, cycle, writer, bytes(data))
        self._history.setdefault(page, []).append(snapshot)
        self.saves_total += 1
        if self.snapshot_count() > self.max_snapshots:
            self._evict_oldest()
        return snapshot

    def save_from(self, memory, page, cycle, writer):
        """Snapshot *page* straight out of *memory*.

        Goes through :meth:`MainMemory.snapshot_page` — the same
        copy-on-write primitive :mod:`repro.checkpoint` builds
        whole-machine snapshots on — so saving a never-touched page
        records zeros without materialising it.
        """
        return self.save(page, cycle, writer, memory.snapshot_page(page))

    def snapshot_count(self):
        return sum(len(snaps) for snaps in self._history.values())

    def _evict_oldest(self):
        oldest_page = None
        oldest_cycle = None
        for page, snaps in self._history.items():
            if snaps and (oldest_cycle is None or snaps[0].cycle < oldest_cycle):
                oldest_cycle = snaps[0].cycle
                oldest_page = page
        if oldest_page is not None:
            snaps = self._history[oldest_page]
            snaps.pop(0)
            if not snaps:
                del self._history[oldest_page]
            self._deleted_pages.add(oldest_page)
            self.gc_removed += 1

    # -------------------------------------------------------------------- GC

    def garbage_collect(self, now_cycle):
        """Drop snapshots older than the age threshold, keeping history."""
        if self.gc_age_cycles is None:
            return 0
        horizon = now_cycle - self.gc_age_cycles
        removed = 0
        for page in list(self._history):
            snaps = self._history[page]
            keep = [s for s in snaps if s.cycle >= horizon]
            if len(keep) != len(snaps):
                removed += len(snaps) - len(keep)
                self._deleted_pages.add(page)
                if keep:
                    self._history[page] = keep
                else:
                    del self._history[page]
        self.gc_removed += removed
        return removed

    # --------------------------------------------------------------- recovery

    def rollback_snapshot(self, page, kill_set):
        """Earliest pre-image taken when a killed thread contaminated *page*.

        Returns None when no killed thread ever became the page's
        write-owner (page untouched by the kill set).  Raises
        :class:`RecoveryImpossible` if relevant history was deleted.
        """
        snaps = self._history.get(page, [])
        for snapshot in snaps:
            if snapshot.writer in kill_set:
                return snapshot
        if page in self._deleted_pages:
            # We cannot prove the deleted snapshots were irrelevant.
            raise RecoveryImpossible(page)
        return None

    def pages_touched(self):
        return set(self._history) | set(self._deleted_pages)

    def clear(self):
        self._history.clear()
        self._deleted_pages.clear()
