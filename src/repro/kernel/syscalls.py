"""Syscall ABI.

``v0`` carries the syscall number; arguments travel in ``a0``..``a3``;
the result returns in ``v0``.  The ``syscall`` instruction serializes
the pipeline (it dispatches into an empty ROB and commits alone), so the
kernel always sees a drained machine — which is also how the paper
argues context switches interact with the RSE (Table 3: "the processor
waits till all the instructions in the reservation station have
completed execution and committed").
"""

SYS_EXIT = 1          # a0 = exit code; terminates the calling thread
SYS_SPAWN = 2         # a0 = entry pc, a1 = argument -> v0 = new tid
SYS_YIELD = 3         # give up the CPU voluntarily
SYS_GETTID = 4        # -> v0 = thread id
SYS_SBRK = 5          # a0 = bytes -> v0 = old break (pages mapped rw)
SYS_PRINT_INT = 6     # a0 = value (recorded in kernel output)
SYS_PUTC = 7          # a0 = character
SYS_RECV = 8          # -> v0 = request id, or 0xFFFFFFFF when exhausted;
                      #    blocks the thread for the simulated network wait
SYS_SEND = 9          # a0 = request id, a1 = response value
SYS_MMAP = 10         # a0 = address, a1 = length (mapped rw)
SYS_MPROTECT = 11     # a0 = address, a1 = length, a2 = perm bits (r=1,w=2,x=4)
SYS_CYCLE = 12        # -> v0 = current cycle (low 32 bits)
SYS_RAND = 13         # -> v0 = deterministic kernel PRNG value
SYS_SLEEP = 14        # a0 = cycles to sleep (blocks the thread)
SYS_JOIN = 15         # a0 = tid -> blocks until that thread terminates;
                      #    v0 = its exit code (or -1 for unknown tid)

NAMES = {
    SYS_EXIT: "exit",
    SYS_SPAWN: "spawn",
    SYS_YIELD: "yield",
    SYS_GETTID: "gettid",
    SYS_SBRK: "sbrk",
    SYS_PRINT_INT: "print_int",
    SYS_PUTC: "putc",
    SYS_RECV: "recv",
    SYS_SEND: "send",
    SYS_MMAP: "mmap",
    SYS_MPROTECT: "mprotect",
    SYS_CYCLE: "cycle",
    SYS_RAND: "rand",
    SYS_SLEEP: "sleep",
    SYS_JOIN: "join",
}

#: v0 value returned by SYS_RECV when no requests remain.
RECV_EXHAUSTED = 0xFFFFFFFF

PERM_R = 1
PERM_W = 2
PERM_X = 4


def perm_string(bits):
    """Convert PERM_* bits to the kernel's permission-string form."""
    out = ""
    if bits & PERM_R:
        out += "r"
    if bits & PERM_W:
        out += "w"
    if bits & PERM_X:
        out += "x"
    return out


def asm_constants():
    """Assembler constants so workloads can say ``li $v0, SYS_RECV``."""
    return {("SYS_" + name.upper()): number
            for number, name in NAMES.items()}
