"""Syscall ABI.

``v0`` carries the syscall number; arguments travel in ``a0``..``a3``;
the result returns in ``v0``.  The ``syscall`` instruction serializes
the pipeline (it dispatches into an empty ROB and commits alone), so the
kernel always sees a drained machine — which is also how the paper
argues context switches interact with the RSE (Table 3: "the processor
waits till all the instructions in the reservation station have
completed execution and committed").
"""

SYS_EXIT = 1          # a0 = exit code; terminates the calling thread
SYS_SPAWN = 2         # a0 = entry pc, a1 = argument -> v0 = new tid
SYS_YIELD = 3         # give up the CPU voluntarily
SYS_GETTID = 4        # -> v0 = thread id
SYS_SBRK = 5          # a0 = bytes -> v0 = old break (pages mapped rw)
SYS_PRINT_INT = 6     # a0 = value (recorded in kernel output)
SYS_PUTC = 7          # a0 = character
SYS_RECV = 8          # -> v0 = request id, or 0xFFFFFFFF when exhausted;
                      #    blocks the thread for the simulated network wait
                      #    (and, with an open-loop request source, until
                      #    the next request actually arrives)
SYS_SEND = 9          # a0 = request id, a1 = response value
SYS_MMAP = 10         # a0 = address, a1 = length (mapped rw)
SYS_MPROTECT = 11     # a0 = address, a1 = length, a2 = perm bits (r=1,w=2,x=4)
SYS_CYCLE = 12        # -> v0 = current cycle, low 32 bits (see below)
SYS_RAND = 13         # -> v0 = deterministic kernel PRNG value
SYS_SLEEP = 14        # a0 = cycles to sleep (blocks the thread)
SYS_JOIN = 15         # a0 = tid -> blocks until that thread terminates;
                      #    v0 = its exit code (or -1 for unknown tid)
SYS_NSEND = 16        # a0 = dest node id, a1 = payload word ->
                      #    v0 = NSEND_OK | NSEND_UNREACHABLE.  The status
                      #    is out-of-band: the payload is never reused as
                      #    a status code.  Datagram semantics: delivery is
                      #    asynchronous and best-effort (a lossy link may
                      #    drop it after NSEND_OK was returned).
SYS_NRECV = 17        # a0 = flags (bit 0 = NRECV_POLL: don't block) ->
                      #    v0 = source node id, a1 = payload word.
                      #    A poll with nothing deliverable returns
                      #    v0 = NRECV_EMPTY.  Node ids are < NODE_ID_LIMIT
                      #    by construction (the network device refuses
                      #    larger fleets), so the sentinel can never
                      #    collide with a real source id.

NAMES = {
    SYS_EXIT: "exit",
    SYS_SPAWN: "spawn",
    SYS_YIELD: "yield",
    SYS_GETTID: "gettid",
    SYS_SBRK: "sbrk",
    SYS_PRINT_INT: "print_int",
    SYS_PUTC: "putc",
    SYS_RECV: "recv",
    SYS_SEND: "send",
    SYS_MMAP: "mmap",
    SYS_MPROTECT: "mprotect",
    SYS_CYCLE: "cycle",
    SYS_RAND: "rand",
    SYS_SLEEP: "sleep",
    SYS_JOIN: "join",
    SYS_NSEND: "nsend",
    SYS_NRECV: "nrecv",
}

#: v0 value returned by SYS_RECV when no requests remain.  The sentinel
#: lives inside the request-id value space, so the kernel *reserves* it:
#: ``Kernel.set_request_source`` refuses to provision a source whose id
#: range would include 0xFFFFFFFF (ids are dense, starting at 0).
RECV_EXHAUSTED = 0xFFFFFFFF

#: SYS_NSEND statuses (out-of-band in v0, never aliased with payloads).
NSEND_OK = 0
NSEND_UNREACHABLE = 1

#: SYS_NRECV empty-poll sentinel.  Shares the value space with source
#: node ids, so NODE_ID_LIMIT keeps real ids clear of it (the same
#: reservation discipline as RECV_EXHAUSTED above).
NRECV_EMPTY = 0xFFFFFFFF
#: SYS_NRECV a0 flag: poll instead of block.
NRECV_POLL = 1

#: Exclusive upper bound on fleet node ids.  Far below NRECV_EMPTY, so
#: a source id can never collide with the sentinel.
NODE_ID_LIMIT = 0x10000

# SYS_CYCLE wrap contract
# -----------------------
# SYS_CYCLE returns the low 32 bits of the (unbounded) simulated cycle
# counter.  Long runs — fleet runs especially — cross 2^32, so guests
# must never compare raw SYS_CYCLE values with slt/sltu.  The supported
# idiom is the modular delta:
#
#     elapsed = (now - start) & 0xFFFFFFFF     # subu $t0, $v0, $s0
#     if elapsed < window: ...                 # sltu $t1, $t0, $t2
#
# which is exact for any interval shorter than 2^32 cycles regardless
# of where the counter wraps.  ``workloads`` timing loops follow it.

PERM_R = 1
PERM_W = 2
PERM_X = 4


def perm_string(bits):
    """Convert PERM_* bits to the kernel's permission-string form."""
    out = ""
    if bits & PERM_R:
        out += "r"
    if bits & PERM_W:
        out += "w"
    if bits & PERM_X:
        out += "x"
    return out


def asm_constants():
    """Assembler constants so workloads can say ``li $v0, SYS_RECV``.

    The network status words ride along so guests compare against the
    named sentinels instead of re-deriving magic numbers.
    """
    constants = {("SYS_" + name.upper()): number
                 for number, name in NAMES.items()}
    constants["RECV_EXHAUSTED"] = RECV_EXHAUSTED
    constants["NSEND_OK"] = NSEND_OK
    constants["NSEND_UNREACHABLE"] = NSEND_UNREACHABLE
    constants["NRECV_EMPTY"] = NRECV_EMPTY
    constants["NRECV_POLL"] = NRECV_POLL
    return constants
