"""Round-robin preemptive scheduler."""

from collections import deque

from repro.kernel.threads import ThreadState


class RoundRobinScheduler:
    """FIFO ready queue with a fixed time quantum."""

    def __init__(self, quantum_cycles=5000):
        self.quantum_cycles = quantum_cycles
        self._ready = deque()
        self.switches = 0

    def make_ready(self, thread):
        if thread.state is ThreadState.TERMINATED:
            return
        thread.state = ThreadState.READY
        if thread not in self._ready:
            self._ready.append(thread)

    def remove(self, thread):
        try:
            self._ready.remove(thread)
        except ValueError:
            pass

    def pick_next(self):
        """Pop and return the next READY thread, or None."""
        while self._ready:
            thread = self._ready.popleft()
            if thread.state is ThreadState.READY:
                self.switches += 1
                thread.state = ThreadState.RUNNING
                return thread
        return None

    def has_ready(self):
        return any(t.state is ThreadState.READY for t in self._ready)

    def __len__(self):
        return len(self._ready)
