"""Minimal operating-system substrate.

The paper's evaluation needs OS services its simulator was augmented
with: multithreading ("the simulator is augmented to enable execution of
multithreaded applications with networking capabilities", Section 5.4),
a SavePage exception handler that checkpoints memory pages (Section
4.2.1), page permissions (the PLT rewrite grant, Figure 3(A)), and
context switches that drain the pipeline (Table 3).  This package
provides all of it on top of the simulated machine:

* :mod:`repro.kernel.threads`     — thread control blocks;
* :mod:`repro.kernel.scheduler`   — round-robin preemptive scheduling;
* :mod:`repro.kernel.syscalls`    — the syscall ABI;
* :mod:`repro.kernel.checkpoints` — the page checkpoint store with
  garbage collection (Section 4.2.2);
* :mod:`repro.kernel.kernel`      — the kernel proper.
"""

from repro.kernel.threads import Thread, ThreadState
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.checkpoints import (
    CheckpointStore,
    PageSnapshot,
    RecoveryImpossible,
)
from repro.kernel.kernel import Kernel, KernelConfig, ProcessExit
from repro.kernel import syscalls

__all__ = [
    "Thread",
    "ThreadState",
    "RoundRobinScheduler",
    "CheckpointStore",
    "PageSnapshot",
    "RecoveryImpossible",
    "Kernel",
    "KernelConfig",
    "ProcessExit",
    "syscalls",
]
