"""The scripted Figure 8 scenario as a reusable workload.

Five worker threads reproduce the paper's dependency diagram exactly
(paper thread names in parentheses; kernel tids in brackets, with the
main thread as tid 1):

* W1 (t2) [2] writes page p1 on its first turn and crashes on turn 2;
* W2 (t1) [3] reads p1 (dependency t2->t1) and writes p2; on turn 1 it
  reads p3 (dependency t0->t1);
* W3 (t0) [4] reads p2 (dependency t1->t0) and writes p3;
* W4 (t3) [5] and W5 (t4) [6] only touch private pages and finish after
  the crash.

Phase ordering uses cooperative round-robin yielding with *private*
turn counters, so synchronization itself adds no inter-thread data
dependencies.  Expected recovery outcome: kill set {W1, W2, W3}; W4, W5
and main survive; p1-p3 roll back to their pre-crash snapshots.
"""

from repro.program.layout import MemoryLayout
from repro.workloads.asmlib import build_workload_image

SOURCE = """
.data
.align 12
p1: .space 4096
p2: .space 4096
p3: .space 4096
p4: .space 4096
p5: .space 4096

.text
main:
    la $a0, w1
    li $v0, SYS_SPAWN
    syscall
    la $a0, w2
    li $v0, SYS_SPAWN
    syscall
    la $a0, w3
    li $v0, SYS_SPAWN
    syscall
    la $a0, w4
    li $v0, SYS_SPAWN
    syscall
    la $a0, w5
    li $v0, SYS_SPAWN
    syscall
main_wait:
    li $v0, SYS_YIELD
    syscall
    lw $t0, p4+8           # W4 done flag
    lw $t1, p5+8           # W5 done flag
    and $t0, $t0, $t1
    beqz $t0, main_wait
    halt

# ---- W1 (paper t2): writes p1, crashes on turn 2 ------------------------
w1:
    li $s0, 0
w1_loop:
    bnez $s0, w1_not0
    la $t0, p1
    li $t1, 0x0A110001
    sw $t1, 0($t0)         # write p1
    j w1_next
w1_not0:
    li $t2, 2
    bne $s0, $t2, w1_next
    li $t0, 0x60000000
    lw $t1, 0($t0)         # CRASH: unmapped load
w1_next:
    li $v0, SYS_YIELD
    syscall
    addi $s0, $s0, 1
    j w1_loop

# ---- W2 (paper t1): reads p1, writes p2; later reads p3 -----------------
w2:
    li $s0, 0
w2_loop:
    bnez $s0, w2_not0
    lw $t1, p1             # read p1 -> dependency W1 -> W2
    la $t0, p2
    addi $t1, $t1, 1
    sw $t1, 0($t0)         # write p2
    j w2_next
w2_not0:
    li $t2, 1
    bne $s0, $t2, w2_next
    lw $t1, p3             # read p3 -> dependency W3 -> W2
w2_next:
    li $v0, SYS_YIELD
    syscall
    addi $s0, $s0, 1
    j w2_loop

# ---- W3 (paper t0): reads p2, writes p3 ---------------------------------
w3:
    li $s0, 0
w3_loop:
    bnez $s0, w3_next
    lw $t1, p2             # read p2 -> dependency W2 -> W3
    la $t0, p3
    addi $t1, $t1, 1
    sw $t1, 0($t0)         # write p3
w3_next:
    li $v0, SYS_YIELD
    syscall
    addi $s0, $s0, 1
    j w3_loop

# ---- W4 / W5 (paper t3 / t4): private pages, finish after the crash -----
w4:
    li $s0, 0
    la $s1, p4
    j wp_loop
w5:
    li $s0, 0
    la $s1, p5
wp_loop:
    bnez $s0, wp_not0
    li $t1, 0x0A110004
    sw $t1, 0($s1)         # private-page work
    j wp_next
wp_not0:
    li $t2, 4
    bne $s0, $t2, wp_next
    li $t1, 1
    sw $t1, 8($s1)         # done flag
    li $v0, SYS_EXIT
    syscall
wp_next:
    li $v0, SYS_YIELD
    syscall
    addi $s0, $s0, 1
    j wp_loop
"""


def program(layout=None):
    """Build the Figure 8 process image; returns (image, assembly)."""
    return build_workload_image(SOURCE, layout or MemoryLayout())
