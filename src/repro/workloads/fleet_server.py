"""Multi-node port of the Figure 9 server workload (fleet runs).

Each fleet node runs one instance of this program.  The request path is
the Fig 9 server verbatim — SYS_RECV, LCG hash, shared per-class
accumulator page, batched stats flush, SYS_SEND — plus a gossip step
over the simulated network: after every response the worker

* ``SYS_NSEND``-s the response value to the node's ring peer
  (``(node + 1) % nodes``, baked into the image), and
* takes one non-blocking ``SYS_NRECV`` poll, folding any peer digest
  into a shared ``netstats`` page.

When its request source is exhausted the worker runs a bounded *drain*
loop, polling for stragglers from slower peers before exiting.  The
drain window is timed with SYS_CYCLE using the wrap-safe modular-delta
idiom (``sub`` then ``sltu`` on the 32-bit difference — see
``repro.kernel.syscalls``): fleet runs are long enough, and failover
jumps clocks far enough, that raw cycle comparison would break at the
2^32 wrap.  Datagrams still in flight when the whole program halts are
dropped; gossip is best-effort by design.
"""

from repro.program.layout import MemoryLayout
from repro.workloads.asmlib import build_workload_image

DEFAULT_WORK_ITERS = 60
DEFAULT_CLASSES = 4
DEFAULT_STATS_BATCH = 8
DEFAULT_DRAIN_CYCLES = 20_000
DEFAULT_DRAIN_POLL_GAP = 500

_SOURCE_TEMPLATE = """
.data
# Shared statistics page: counters all workers read-modify-write.
stats:
    .word 0                    # total requests served
    .word 0                    # running response checksum
    .word 0                    # max request id seen
.align 12
# Per-class accumulator pages (request id % {classes}); page-aligned so
# each class is its own unit of DDT tracking.
class_pages:
{class_page_words}
# Peer gossip fold: digests received over the network.
netstats:
    .word 0                    # digests folded
    .word 0                    # digest xor
done_count:
    .word 0

.text
main:
    li $s0, {workers}          # workers to spawn
    beqz $s0, all_spawned
spawn_loop:
    li $v0, SYS_SPAWN
    la $a0, worker
    move $a1, $s0
    syscall
    addi $s0, $s0, -1
    bnez $s0, spawn_loop
all_spawned:

wait_loop:
    li $v0, SYS_YIELD
    syscall
    lw $t0, done_count
    li $t1, {workers}
    bne $t0, $t1, wait_loop
    halt

# ---------------------------------------------------------------- worker
worker:
    li $s2, 0                  # locally served (since last stats flush)
    li $s3, 0                  # local checksum accumulator
    li $s5, 0                  # local max request id
worker_loop:
    li $v0, SYS_RECV
    syscall
    li $t1, -1
    beq $v0, $t1, worker_done
    move $s0, $v0              # request id

    # ---- per-request computation: LCG hash over the request -----------
    move $t0, $s0
    li $t2, {work_iters}
hash_loop:
    li  $t3, 1664525
    mul $t0, $t0, $t3
    li  $t3, 1013904223
    add $t0, $t0, $t3
    xor $t0, $t0, $s0
    addi $t2, $t2, -1
    bnez $t2, hash_loop
    move $s1, $t0              # response value

    # ---- shared per-class accumulator page ------------------------------
    li  $t1, {classes}
    remu $t2, $s0, $t1         # class index
    sll $t2, $t2, 12           # * page size
    la  $t3, class_pages
    add $t3, $t3, $t2
    lw  $t4, 0($t3)            # read the class accumulator (dependency!)
    add $t4, $t4, $s1
    sw  $t4, 0($t3)            # write it back (ownership migration)
    lw  $t4, 4($t3)
    addi $t4, $t4, 1
    sw  $t4, 4($t3)            # per-class request count

    # ---- local statistics, flushed to the shared page in batches --------
    addi $s2, $s2, 1
    xor  $s3, $s3, $s1
    slt  $at, $s5, $s0
    beqz $at, no_new_max
    move $s5, $s0
no_new_max:
    andi $t4, $s2, {stats_batch_mask}
    bnez $t4, no_flush
    jal  flush_stats
no_flush:

    # ---- respond ----------------------------------------------------------
    li $v0, SYS_SEND
    move $a0, $s0
    move $a1, $s1
    syscall

    # ---- gossip: digest to the ring peer, one poll for theirs -----------
    li $v0, SYS_NSEND
    li $a0, {peer}
    move $a1, $s1
    syscall
    li $v0, SYS_NRECV
    li $a0, 1                  # NRECV_POLL: never block the request path
    syscall
    li $t1, -1
    beq $v0, $t1, no_gossip
    jal fold_digest
no_gossip:
    j worker_loop

# Merge the local counters into the shared statistics page.
flush_stats:
    beqz $s2, flush_ret
    la  $t3, stats
    lw  $t4, 0($t3)
    add $t4, $t4, $s2
    sw  $t4, 0($t3)            # total served
    lw  $t4, 4($t3)
    xor $t4, $t4, $s3
    sw  $t4, 4($t3)            # checksum
    lw  $t4, 8($t3)
    slt $at, $t4, $s5
    beqz $at, flush_no_max
    sw  $s5, 8($t3)
flush_no_max:
    li $s2, 0
    li $s3, 0
flush_ret:
    jr $ra

# Fold one received digest ($a1, from node $v0) into netstats.
fold_digest:
    la  $t3, netstats
    lw  $t4, 0($t3)
    addi $t4, $t4, 1
    sw  $t4, 0($t3)
    lw  $t4, 4($t3)
    xor $t4, $t4, $a1
    sw  $t4, 4($t3)
    jr $ra

# ---- bounded drain: poll for straggler digests, then exit --------------
# The window is timed with the wrap-safe modular delta: sub gives the
# 32-bit difference (exact for any interval < 2^32 even across a wrap),
# sltu compares it unsigned against the window.  Comparing raw SYS_CYCLE
# values here would deadlock a worker that straddles the wrap.
worker_done:
    jal flush_stats
    li $v0, SYS_CYCLE
    syscall
    move $s6, $v0              # drain window start (low 32 bits)
drain_loop:
    li $v0, SYS_NRECV
    li $a0, 1                  # poll
    syscall
    li $t1, -1
    beq $v0, $t1, drain_wait
    jal fold_digest
    j drain_loop
drain_wait:
    li $v0, SYS_CYCLE
    syscall
    sub  $t0, $v0, $s6         # modular elapsed (wrap-safe)
    li   $t2, {drain_cycles}
    sltu $t1, $t0, $t2
    beqz $t1, drain_over       # window expired
    li $v0, SYS_SLEEP
    li $a0, {drain_poll_gap}
    syscall
    j drain_loop
drain_over:
    la $t0, done_count
    lw $t1, 0($t0)
    addi $t1, $t1, 1
    sw $t1, 0($t0)
    li $v0, SYS_EXIT
    li $a0, 0
    syscall
"""


def source(node, nodes, workers, work_iters=DEFAULT_WORK_ITERS,
           classes=DEFAULT_CLASSES, stats_batch=DEFAULT_STATS_BATCH,
           drain_cycles=DEFAULT_DRAIN_CYCLES,
           drain_poll_gap=DEFAULT_DRAIN_POLL_GAP):
    """Assembly source for fleet node *node* of *nodes*."""
    if not 0 <= node < nodes:
        raise ValueError("node %r outside fleet of %d" % (node, nodes))
    if stats_batch & (stats_batch - 1):
        raise ValueError("stats_batch must be a power of two")
    if drain_cycles < 1 or drain_poll_gap < 1:
        raise ValueError("drain window and poll gap must be >= 1")
    class_page_words = "\n".join(
        "    .space 4096" for __ in range(classes))
    return _SOURCE_TEMPLATE.format(
        workers=workers,
        work_iters=work_iters,
        classes=classes,
        stats_batch_mask=stats_batch - 1,
        class_page_words=class_page_words,
        peer=(node + 1) % nodes,
        drain_cycles=drain_cycles,
        drain_poll_gap=drain_poll_gap,
    )


def program(node, nodes, workers, work_iters=DEFAULT_WORK_ITERS,
            classes=DEFAULT_CLASSES, stats_batch=DEFAULT_STATS_BATCH,
            drain_cycles=DEFAULT_DRAIN_CYCLES,
            drain_poll_gap=DEFAULT_DRAIN_POLL_GAP, layout=None):
    """Build the per-node server image; returns ``(image, asm)``."""
    return build_workload_image(
        source(node, nodes, workers, work_iters, classes, stats_batch,
               drain_cycles, drain_poll_gap),
        layout or MemoryLayout())
