"""``vpr``-Routing surrogate: BFS maze routing on an obstacle grid.

SPEC2000 ``vpr``'s router rips up and re-routes nets with a maze router
(breadth-first wave expansion over the routing-resource graph).  The
surrogate routes a sequence of source/sink pairs over a bordered grid:

* wave expansion with an explicit FIFO queue;
* a generation-stamped ``visited`` array (no O(grid) clearing per net);
* parent pointers and a backtrack pass that marks the found path as
  occupied, so later nets contend for resources like real routing.

The grid carries a one-cell obstacle border, removing all bounds checks
from the inner loop (the classic maze-router trick).
"""

import random
from collections import deque

from repro.program.layout import MemoryLayout
from repro.workloads.asmlib import build_workload_image

DEFAULT_WIDTH = 24
DEFAULT_HEIGHT = 24
DEFAULT_ROUTES = 12
DEFAULT_OBSTACLE_PCT = 20

_SOURCE_TEMPLATE = """
.data
occ:      {occ_words}
visited:  .space {cells_bytes}
parent:   .space {cells_bytes}
queue:    .space {cells_bytes}
srcs:     {src_words}
sinks:    {sink_words}
routed:   .word 0
total_len:.word 0

.text
main:
    la $s0, occ
    la $s1, visited
    la $s2, parent
    la $s3, queue
    la $s4, srcs
    la $s5, sinks
    li $s6, 0                  # route index (also visited generation - 1)

route_loop:
    # ---- BFS from srcs[i] towards sinks[i] ------------------------------
    sll $t0, $s6, 2
    add $t1, $s4, $t0
    lw  $t2, 0($t1)            # src cell index
    add $t1, $s5, $t0
    lw  $s7, 0($t1)            # sink cell index
    # skip the route when an earlier path occupied either endpoint
    sll $t0, $t2, 2
    add $t1, $s0, $t0
    lw  $t1, 0($t1)
    bnez $t1, bfs_fail
    sll $t0, $s7, 2
    add $t1, $s0, $t0
    lw  $t1, 0($t1)
    bnez $t1, bfs_fail
    sll $t0, $t2, 2
    addi $v1, $s6, 1           # generation stamp for this route
    li  $t3, 0                 # queue head
    li  $t4, 0                 # queue tail
    sw  $t2, 0($s3)            # queue[0] = src
    addi $t4, $t4, 1
    sll $t0, $t2, 2
    add $t1, $s1, $t0
    sw  $v1, 0($t1)            # visited[src] = gen
    add $t1, $s2, $t0
    sw  $t2, 0($t1)            # parent[src] = src

bfs_loop:
    slt $at, $t3, $t4
    beqz $at, bfs_fail         # queue empty: unroutable
    sll $t0, $t3, 2
    add $t1, $s3, $t0
    lw  $t5, 0($t1)            # current cell
    addi $t3, $t3, 1
    beq $t5, $s7, bfs_found

    # neighbour offsets: +1, -1, +W, -W (border cells are occupied)
    addi $t6, $t5, 1
    jal try_neighbor
    addi $t6, $t5, -1
    jal try_neighbor
    addi $t6, $t5, {width}
    jal try_neighbor
    addi $t6, $t5, -{width}
    jal try_neighbor
    j bfs_loop

# in: $t6 candidate cell, $t5 current cell, $v1 generation
# clobbers $t7..$t9; enqueues at $t4
try_neighbor:
    sll $t7, $t6, 2
    add $t8, $s1, $t7
    lw  $t9, 0($t8)
    beq $t9, $v1, tn_done      # already visited this generation
    add $t9, $s0, $t7
    lw  $t9, 0($t9)
    bnez $t9, tn_done          # occupied / border
    sw  $v1, 0($t8)            # visited[n] = gen
    add $t8, $s2, $t7
    sw  $t5, 0($t8)            # parent[n] = current
    sll $t8, $t4, 2
    add $t8, $s3, $t8
    sw  $t6, 0($t8)            # enqueue
    addi $t4, $t4, 1
tn_done:
    jr $ra

bfs_found:
    # ---- backtrack: mark the path occupied, count its length ------------
    move $t0, $s7
    li  $t1, 0                 # path length
back_loop:
    sll $t7, $t0, 2
    add $t8, $s0, $t7
    li  $t9, 1
    sw  $t9, 0($t8)            # occ[cell] = 1
    addi $t1, $t1, 1
    add $t8, $s2, $t7
    lw  $t9, 0($t8)            # parent
    beq $t9, $t0, back_done    # reached the source (self-parent)
    move $t0, $t9
    j back_loop
back_done:
    lw  $t0, total_len
    add $t0, $t0, $t1
    sw  $t0, total_len
    lw  $t0, routed
    addi $t0, $t0, 1
    sw  $t0, routed

bfs_fail:
    addi $s6, $s6, 1
    slti $at, $s6, {routes}
    bnez $at, route_loop
    halt
"""


def make_maze(width=DEFAULT_WIDTH, height=DEFAULT_HEIGHT,
              routes=DEFAULT_ROUTES, obstacle_pct=DEFAULT_OBSTACLE_PCT,
              seed=11):
    """Bordered occupancy grid plus route endpoints (deterministic).

    Returns ``(occ, srcs, sinks, stride)`` where *occ* is the flattened
    (width+2) x (height+2) grid and endpoints are flat indices.
    """
    rng = random.Random(seed)
    stride = width + 2
    occ = [1] * (stride * (height + 2))
    for y in range(1, height + 1):
        for x in range(1, width + 1):
            occ[y * stride + x] = 1 if rng.randrange(100) < obstacle_pct else 0
    free = [i for i, v in enumerate(occ) if v == 0]
    srcs, sinks = [], []
    for __ in range(routes):
        srcs.append(rng.choice(free))
        sinks.append(rng.choice(free))
    return occ, srcs, sinks, stride


def reference_route(occ, srcs, sinks, stride):
    """Python oracle: same BFS + path marking; returns (routed, total_len)."""
    occ = list(occ)
    routed = 0
    total_len = 0
    for src, sink in zip(srcs, sinks):
        if occ[src] or occ[sink]:
            continue
        parent = {src: src}
        queue = deque([src])
        found = False
        while queue:
            cell = queue.popleft()
            if cell == sink:
                found = True
                break
            for offset in (1, -1, stride, -stride):
                neighbor = cell + offset
                if neighbor not in parent and not occ[neighbor]:
                    parent[neighbor] = cell
                    queue.append(neighbor)
        if not found:
            continue
        cell = sink
        length = 0
        while True:
            occ[cell] = 1
            length += 1
            if parent[cell] == cell:
                break
            cell = parent[cell]
        total_len += length
        routed += 1
    return routed, total_len


def _words(values):
    return ".word " + ", ".join(str(v) for v in values)


def source(width=DEFAULT_WIDTH, height=DEFAULT_HEIGHT, routes=DEFAULT_ROUTES,
           obstacle_pct=DEFAULT_OBSTACLE_PCT, seed=11):
    occ, srcs, sinks, stride = make_maze(width, height, routes, obstacle_pct,
                                         seed)
    return _SOURCE_TEMPLATE.format(
        occ_words=_words(occ),
        cells_bytes=len(occ) * 4,
        src_words=_words(srcs),
        sink_words=_words(sinks),
        width=stride,
        routes=routes,
    )


def program(width=DEFAULT_WIDTH, height=DEFAULT_HEIGHT, routes=DEFAULT_ROUTES,
            obstacle_pct=DEFAULT_OBSTACLE_PCT, seed=11, layout=None):
    """Build the routing process image; returns (image, assembly)."""
    return build_workload_image(
        source(width, height, routes, obstacle_pct, seed),
        layout or MemoryLayout())
