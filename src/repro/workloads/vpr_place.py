"""``vpr``-Placement surrogate: simulated-annealing cell placement.

SPEC2000 ``vpr``'s placement phase anneals a netlist onto an FPGA grid,
minimising bounding-box wirelength.  This surrogate runs the same kernel
at laptop-simulation scale: cells with (x, y) positions, two-point nets,
an LCG random-move generator, Manhattan wirelength, and a linearly
decaying integer temperature as the acceptance threshold.  The code is
branch- and load/store-heavy in the same way the original's inner loop
is, which is what the Table 4 experiments (control-flow CHECKs, cache
pressure) care about.

The data layout is CSR adjacency (cell -> incident nets) so each move
only re-evaluates the nets of the moved cell, exactly like VPR's
incremental bounding-box update.
"""

import random

from repro.program.layout import MemoryLayout
from repro.workloads.asmlib import build_workload_image

DEFAULT_CELLS = 64
DEFAULT_NETS = 96
DEFAULT_MOVES = 1200
DEFAULT_GRID = 32

_SOURCE_TEMPLATE = """
.data
posx:      {posx_words}
posy:      {posy_words}
neta:      {neta_words}
netb:      {netb_words}
adjidx:    {adjidx_words}
adjlist:   {adjlist_words}
lcg_state: .word {seed}
accepts:   .word 0
final_cost:.word 0

.text
main:
    la $s0, posx
    la $s1, posy
    la $s2, neta
    la $s3, netb
    la $s4, adjidx
    la $s5, adjlist
    li $s6, {moves}            # moves remaining
    li $s7, {temperature}      # integer temperature

move_loop:
    # ---- LCG: pick a cell and a new position ---------------------------
    lw  $t0, lcg_state
    li  $t1, 1664525
    mul $t0, $t0, $t1
    li  $t1, 1013904223
    add $t0, $t0, $t1
    sw  $t0, lcg_state
    srl $t1, $t0, 16
    li  $t2, {cells}
    remu $t3, $t1, $t2         # cell c
    srl $t1, $t0, 4
    li  $t2, {grid}
    remu $t4, $t1, $t2         # new x
    srl $t1, $t0, 10
    remu $t5, $t1, $t2         # new y

    # ---- delta = sum over nets of c of (new length - old length) -------
    sll $t6, $t3, 2
    add $t6, $s4, $t6
    lw  $t7, 0($t6)            # adj start
    lw  $t8, 4($t6)            # adj end
    li  $t9, 0                 # delta
    sll $t6, $t3, 2
    add $t0, $s0, $t6
    lw  $v0, 0($t0)            # old x of c
    add $t0, $s1, $t6
    lw  $v1, 0($t0)            # old y of c

net_loop:
    slt $at, $t7, $t8
    beqz $at, net_done
    sll $t0, $t7, 2
    add $t0, $s5, $t0
    lw  $t0, 0($t0)            # net id
    sll $t0, $t0, 2
    add $t1, $s2, $t0
    lw  $t1, 0($t1)            # endpoint a
    add $t2, $s3, $t0
    lw  $t2, 0($t2)            # endpoint b
    bne $t1, $t3, other_is_a
    move $t1, $t2              # other endpoint
other_is_a:
    sll $t1, $t1, 2
    add $t0, $s0, $t1
    lw  $t0, 0($t0)            # ox
    add $t2, $s1, $t1
    lw  $t2, 0($t2)            # oy
    # old length |oldx-ox| + |oldy-oy|
    sub $t1, $v0, $t0
    bgez $t1, abs_old_x
    neg $t1, $t1
abs_old_x:
    sub $a3, $v1, $t2
    bgez $a3, abs_old_y
    neg $a3, $a3
abs_old_y:
    add $t1, $t1, $a3
    sub $t9, $t9, $t1          # delta -= old
    # new length |nx-ox| + |ny-oy|
    sub $t1, $t4, $t0
    bgez $t1, abs_new_x
    neg $t1, $t1
abs_new_x:
    sub $a3, $t5, $t2
    bgez $a3, abs_new_y
    neg $a3, $a3
abs_new_y:
    add $t1, $t1, $a3
    add $t9, $t9, $t1          # delta += new
    addi $t7, $t7, 1
    j net_loop
net_done:

    # ---- accept if delta <= temperature --------------------------------
    slt $at, $s7, $t9
    bnez $at, reject
    sll $t6, $t3, 2
    add $t0, $s0, $t6
    sw  $t4, 0($t0)
    add $t0, $s1, $t6
    sw  $t5, 0($t0)
    lw  $t0, accepts
    addi $t0, $t0, 1
    sw  $t0, accepts
reject:

    # ---- anneal: decay temperature every {decay_every} moves ------------
    li  $t0, {decay_every}
    remu $t1, $s6, $t0
    bnez $t1, no_decay
    blez $s7, no_decay
    addi $s7, $s7, -1
no_decay:
    addi $s6, $s6, -1
    bnez $s6, move_loop

    # ---- final cost: sum all net lengths --------------------------------
    li  $t0, 0                 # net index
    li  $t9, 0                 # cost
cost_loop:
    sll $t1, $t0, 2
    add $t2, $s2, $t1
    lw  $t2, 0($t2)
    add $t3, $s3, $t1
    lw  $t3, 0($t3)
    sll $t2, $t2, 2
    sll $t3, $t3, 2
    add $t4, $s0, $t2
    lw  $t4, 0($t4)
    add $t5, $s0, $t3
    lw  $t5, 0($t5)
    sub $t4, $t4, $t5
    bgez $t4, cost_abs_x
    neg $t4, $t4
cost_abs_x:
    add $t9, $t9, $t4
    add $t4, $s1, $t2
    lw  $t4, 0($t4)
    add $t5, $s1, $t3
    lw  $t5, 0($t5)
    sub $t4, $t4, $t5
    bgez $t4, cost_abs_y
    neg $t4, $t4
cost_abs_y:
    add $t9, $t9, $t4
    addi $t0, $t0, 1
    slti $at, $t0, {nets}
    bnez $at, cost_loop
    sw  $t9, final_cost
    halt
"""


def _words(values):
    return ".word " + ", ".join(str(v) for v in values)


def make_netlist(cells=DEFAULT_CELLS, nets=DEFAULT_NETS, grid=DEFAULT_GRID,
                 seed=7):
    """Random initial placement and two-point netlist (deterministic)."""
    rng = random.Random(seed)
    posx = [rng.randrange(grid) for __ in range(cells)]
    posy = [rng.randrange(grid) for __ in range(cells)]
    net_pairs = []
    for __ in range(nets):
        a = rng.randrange(cells)
        b = rng.randrange(cells)
        while b == a:
            b = rng.randrange(cells)
        net_pairs.append((a, b))
    return posx, posy, net_pairs


def _csr_adjacency(cells, net_pairs):
    adjacency = [[] for __ in range(cells)]
    for net_id, (a, b) in enumerate(net_pairs):
        adjacency[a].append(net_id)
        adjacency[b].append(net_id)
    index = [0]
    flat = []
    for nets_of_cell in adjacency:
        flat.extend(nets_of_cell)
        index.append(len(flat))
    return index, flat


def wirelength(posx, posy, net_pairs):
    """Total Manhattan wirelength (the cost the annealer minimises)."""
    return sum(abs(posx[a] - posx[b]) + abs(posy[a] - posy[b])
               for a, b in net_pairs)


def source(cells=DEFAULT_CELLS, nets=DEFAULT_NETS, moves=DEFAULT_MOVES,
           grid=DEFAULT_GRID, seed=7, temperature=None, decay_every=None):
    posx, posy, net_pairs = make_netlist(cells, nets, grid, seed)
    adjidx, adjlist = _csr_adjacency(cells, net_pairs)
    temperature = temperature if temperature is not None else grid // 2
    decay_every = decay_every or max(1, moves // (temperature + 1))
    return _SOURCE_TEMPLATE.format(
        posx_words=_words(posx),
        posy_words=_words(posy),
        neta_words=_words([a for a, __ in net_pairs]),
        netb_words=_words([b for __, b in net_pairs]),
        adjidx_words=_words(adjidx),
        adjlist_words=_words(adjlist or [0]),
        seed=seed * 2654435761 % (1 << 31) or 1,
        moves=moves,
        temperature=temperature,
        cells=cells,
        grid=grid,
        decay_every=decay_every,
        nets=nets,
    )


def program(cells=DEFAULT_CELLS, nets=DEFAULT_NETS, moves=DEFAULT_MOVES,
            grid=DEFAULT_GRID, seed=7, layout=None):
    """Build the placement process image; returns (image, assembly)."""
    return build_workload_image(
        source(cells, nets, moves, grid, seed), layout or MemoryLayout())
