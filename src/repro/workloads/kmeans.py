"""kMeans clustering workload (Section 5: "a numerical clustering strategy
using a predetermined number of clusters, k").

The paper's configuration — 3 iterations, 200 patterns, 16 clusters — is
the default here too (they note the full run "takes [a] prohibitively
long time" under simulation; the same is true of a pure-Python cycle
simulator, and the defaults already run in well under a million cycles).

Integer arithmetic throughout (squared Euclidean distance, truncating
mean), with :func:`reference_kmeans` providing the bit-exact oracle used
by the differential tests.
"""

import random

from repro.program.layout import MemoryLayout
from repro.workloads.asmlib import build_workload_image

DEFAULT_PATTERNS = 200
DEFAULT_CLUSTERS = 16
DEFAULT_ITERATIONS = 3
COORD_RANGE = 1024

_SOURCE_TEMPLATE = """
.data
patterns:
{pattern_words}
centroids:
{centroid_words}
sums:    .space {sums_bytes}
counts:  .space {counts_bytes}
assign:  .space {assign_bytes}

.text
main:
    la $s0, patterns
    la $s1, centroids
    la $s2, sums
    la $s3, counts
    la $s4, assign
    li $s5, {iterations}

iter_loop:
    # ---- zero per-iteration accumulators -------------------------------
    move $t0, $s2
    li $t1, {k2}
zero_sums:
    sw $zero, 0($t0)
    addi $t0, $t0, 4
    addi $t1, $t1, -1
    bnez $t1, zero_sums
    move $t0, $s3
    li $t1, {clusters}
zero_counts:
    sw $zero, 0($t0)
    addi $t0, $t0, 4
    addi $t1, $t1, -1
    bnez $t1, zero_counts

    # ---- assignment pass ------------------------------------------------
    li $t0, 0                  # pattern index p
pat_loop:
    sll $t1, $t0, 3
    add $t1, $s0, $t1
    lw $t2, 0($t1)             # px
    lw $t3, 4($t1)             # py
    li $t4, 0                  # cluster index k
    li $t5, 0x7FFFFFFF         # best distance
    li $t6, 0                  # best cluster
    move $t7, $s1
k_loop:
    lw $t8, 0($t7)
    lw $t9, 4($t7)
    sub $t8, $t2, $t8
    mul $t8, $t8, $t8
    sub $t9, $t3, $t9
    mul $t9, $t9, $t9
    add $t8, $t8, $t9          # squared distance
    slt $at, $t8, $t5
    beqz $at, k_next
    move $t5, $t8
    move $t6, $t4
k_next:
    addi $t7, $t7, 8
    addi $t4, $t4, 1
    slti $at, $t4, {clusters}
    bnez $at, k_loop

    sll $t1, $t0, 2
    add $t1, $s4, $t1
    sw $t6, 0($t1)             # assign[p] = best
    sll $t1, $t6, 2
    add $t1, $s3, $t1
    lw $t4, 0($t1)
    addi $t4, $t4, 1
    sw $t4, 0($t1)             # counts[best]++
    sll $t1, $t6, 3
    add $t1, $s2, $t1
    lw $t4, 0($t1)
    add $t4, $t4, $t2
    sw $t4, 0($t1)             # sums[best].x += px
    lw $t4, 4($t1)
    add $t4, $t4, $t3
    sw $t4, 4($t1)             # sums[best].y += py
    addi $t0, $t0, 1
    slti $at, $t0, {patterns}
    bnez $at, pat_loop

    # ---- centroid update -------------------------------------------------
    li $t0, 0
upd_loop:
    sll $t1, $t0, 2
    add $t1, $s3, $t1
    lw $t2, 0($t1)             # count
    beqz $t2, upd_next
    sll $t1, $t0, 3
    add $t3, $s2, $t1
    add $t4, $s1, $t1
    lw $t5, 0($t3)
    div $t5, $t5, $t2
    sw $t5, 0($t4)
    lw $t5, 4($t3)
    div $t5, $t5, $t2
    sw $t5, 4($t4)
upd_next:
    addi $t0, $t0, 1
    slti $at, $t0, {clusters}
    bnez $at, upd_loop

    addi $s5, $s5, -1
    bnez $s5, iter_loop
    halt
"""


def generate_patterns(count=DEFAULT_PATTERNS, clusters=DEFAULT_CLUSTERS,
                      seed=42):
    """Deterministic 2-D integer patterns drawn around *clusters* centres."""
    rng = random.Random(seed)
    centres = [(rng.randrange(COORD_RANGE), rng.randrange(COORD_RANGE))
               for __ in range(clusters)]
    patterns = []
    for index in range(count):
        cx, cy = centres[index % clusters]
        patterns.append((
            max(0, min(COORD_RANGE - 1, cx + rng.randrange(-40, 41))),
            max(0, min(COORD_RANGE - 1, cy + rng.randrange(-40, 41))),
        ))
    return patterns


def source(patterns=None, clusters=DEFAULT_CLUSTERS,
           iterations=DEFAULT_ITERATIONS, seed=42,
           pattern_count=DEFAULT_PATTERNS):
    """Assembly source for the kMeans program."""
    if patterns is None:
        patterns = generate_patterns(pattern_count, clusters, seed)
    initial = patterns[:clusters]          # first-k initialisation
    pattern_words = "\n".join("    .word %d, %d" % p for p in patterns)
    centroid_words = "\n".join("    .word %d, %d" % c for c in initial)
    return _SOURCE_TEMPLATE.format(
        pattern_words=pattern_words,
        centroid_words=centroid_words,
        sums_bytes=clusters * 8,
        counts_bytes=clusters * 4,
        assign_bytes=len(patterns) * 4,
        iterations=iterations,
        clusters=clusters,
        k2=clusters * 2,
        patterns=len(patterns),
    )


def program(patterns=None, clusters=DEFAULT_CLUSTERS,
            iterations=DEFAULT_ITERATIONS, seed=42,
            pattern_count=DEFAULT_PATTERNS, layout=None):
    """Build the kMeans process image; returns (image, assembly)."""
    return build_workload_image(
        source(patterns, clusters, iterations, seed, pattern_count),
        layout or MemoryLayout())


def reference_kmeans(patterns, clusters=DEFAULT_CLUSTERS,
                     iterations=DEFAULT_ITERATIONS):
    """Bit-exact Python oracle for the assembly program.

    Returns (assignments, centroids) after *iterations* passes with the
    same truncating integer arithmetic.
    """
    def trunc_div(a, b):
        quotient = abs(a) // abs(b)
        return -quotient if (a < 0) != (b < 0) else quotient

    centroids = [list(p) for p in patterns[:clusters]]
    assignments = [0] * len(patterns)
    for __ in range(iterations):
        sums = [[0, 0] for __ in range(clusters)]
        counts = [0] * clusters
        for index, (px, py) in enumerate(patterns):
            best, best_dist = 0, None
            for k, (cx, cy) in enumerate(centroids):
                dist = (px - cx) ** 2 + (py - cy) ** 2
                if best_dist is None or dist < best_dist:
                    best, best_dist = k, dist
            assignments[index] = best
            counts[best] += 1
            sums[best][0] += px
            sums[best][1] += py
        for k in range(clusters):
            if counts[k]:
                centroids[k][0] = trunc_div(sums[k][0], counts[k])
                centroids[k][1] = trunc_div(sums[k][1], counts[k])
    return assignments, centroids
