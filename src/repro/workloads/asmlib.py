"""Shared assembly tooling for the workload programs."""

import re

from repro.isa.assembler import assemble
from repro.kernel import syscalls
from repro.program.image import HEADER_BYTES, build_image
from repro.program.layout import MemoryLayout
from repro.rse import check


def std_constants(layout=None):
    """Assembler constants every workload gets: syscalls, RSE ops, layout."""
    constants = {}
    constants.update(syscalls.asm_constants())
    constants.update(check.asm_constants())
    layout = layout or MemoryLayout()
    constants["HDR_BASE"] = layout.header_base
    constants["HDR_SIZE"] = HEADER_BYTES
    constants["STACK_TOP"] = layout.stack_top
    constants["HEAP_BASE"] = layout.heap_base
    return constants


#: Mnemonics the ICM checks in the Table 4 configuration ("all
#: control-flow instructions"), including the pseudo-branches that
#: expand to slt + branch.
_CONTROL_MNEMONICS = frozenset({
    "j", "jal", "jr", "jalr", "ret",
    "beq", "bne", "blez", "bgtz", "bltz", "bgez",
    "b", "beqz", "bnez", "blt", "bgt", "ble", "bge",
})

_LABEL_PREFIX_RE = re.compile(r"^(\s*(?:[A-Za-z_.$][\w.$]*:\s*)*)(.*)$")


def insert_nops_before_control(source):
    """Insert a NOP before every control-flow instruction in *source*.

    This is the paper's cache-overhead methodology (Section 5.1):
    runtime-inserted CHECKs never occupy instruction memory, so their
    I-cache pressure is measured by "rewrit[ing] the code segment of the
    process inserting NOP instructions wherever a CHECK instruction has
    to be placed and running the baseline simulator".  Labels stay bound
    to the NOP (jump targets then execute NOP-then-branch, preserving
    semantics).
    """
    out = []
    for line in source.splitlines():
        code = line.split("#", 1)[0].split(";", 1)[0]
        match = _LABEL_PREFIX_RE.match(code)
        body = match.group(2).strip() if match else ""
        mnemonic = body.split(None, 1)[0].lower() if body else ""
        if mnemonic in _CONTROL_MNEMONICS:
            prefix = match.group(1)
            if prefix.strip():
                out.append(prefix.rstrip())
            out.append("    nop")
            out.append("    " + body)
        else:
            out.append(line)
    return "\n".join(out)


def build_workload_image(source, layout=None, **image_kwargs):
    """Assemble *source* against *layout* and wrap it in a process image."""
    layout = layout or MemoryLayout()
    asm = assemble(source, text_base=layout.text_base,
                   data_base=layout.data_base,
                   constants=std_constants(layout))
    return build_image(asm, layout, **image_kwargs), asm
