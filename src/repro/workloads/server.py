"""Multithreaded network server workload (Section 5.4 / Figure 9).

"The performance overhead of the DDT is measured using a multithreaded
network server ... threads independently serve web requests, and
dependency occurs only when two threads read from and write to the same
memory page."  We reproduce that structure:

* a pool of worker threads, each looping: ``SYS_RECV`` (blocks for the
  simulated network latency — the source of the I/O parallelism that
  makes runtime drop as threads are added), per-request computation
  (an LCG hash loop), shared-state updates, ``SYS_SEND``;
* shared memory pages: a statistics page every worker read-modify-writes
  and a table of per-class accumulator pages (request id modulo N), so
  page ownership migrates between threads and produces both SavePage
  checkpoints and logged dependencies;
* the main thread spawns the pool and then polls a shared
  ``done_count`` page (with ``SYS_YIELD``) until every worker exits.

Each run handles a fixed number of requests (the paper: "we vary the
number of threads and measure the time for the server to handle one
hundred requests").
"""

from repro.program.layout import MemoryLayout
from repro.workloads.asmlib import build_workload_image

DEFAULT_WORK_ITERS = 120
DEFAULT_CLASSES = 6

_SOURCE_TEMPLATE = """
.data
# Shared statistics page: counters all workers read-modify-write.
stats:
    .word 0                    # total requests served
    .word 0                    # running response checksum
    .word 0                    # max request id seen
.align 12
# Per-class accumulator pages (request id % {classes}); page-aligned so
# each class is its own unit of DDT tracking.
class_pages:
{class_page_words}
done_count:
    .word 0

.text
main:
    li $s0, {workers}          # workers to spawn
    beqz $s0, all_spawned
spawn_loop:
    li $v0, SYS_SPAWN
    la $a0, worker
    move $a1, $s0
    syscall
    addi $s0, $s0, -1
    bnez $s0, spawn_loop
all_spawned:

wait_loop:
    li $v0, SYS_YIELD
    syscall
    lw $t0, done_count
    li $t1, {workers}
    bne $t0, $t1, wait_loop
    halt

# ---------------------------------------------------------------- worker
worker:
    li $s2, 0                  # locally served (since last stats flush)
    li $s3, 0                  # local checksum accumulator
    li $s5, 0                  # local max request id
worker_loop:
    li $v0, SYS_RECV
    syscall
    li $t1, -1
    beq $v0, $t1, worker_done
    move $s0, $v0              # request id

    # ---- per-request computation: LCG hash over the request -----------
    move $t0, $s0
    li $t2, {work_iters}
hash_loop:
    li  $t3, 1664525
    mul $t0, $t0, $t3
    li  $t3, 1013904223
    add $t0, $t0, $t3
    xor $t0, $t0, $s0
    addi $t2, $t2, -1
    bnez $t2, hash_loop
    move $s1, $t0              # response value

    # ---- shared per-class accumulator page ------------------------------
    li  $t1, {classes}
    remu $t2, $s0, $t1         # class index
    sll $t2, $t2, 12           # * page size
    la  $t3, class_pages
    add $t3, $t3, $t2
    lw  $t4, 0($t3)            # read the class accumulator (dependency!)
    add $t4, $t4, $s1
    sw  $t4, 0($t3)            # write it back (ownership migration)
    lw  $t4, 4($t3)
    addi $t4, $t4, 1
    sw  $t4, 4($t3)            # per-class request count

    # ---- local statistics, flushed to the shared page in batches --------
    addi $s2, $s2, 1
    xor  $s3, $s3, $s1
    slt  $at, $s5, $s0
    beqz $at, no_new_max
    move $s5, $s0
no_new_max:
    andi $t4, $s2, {stats_batch_mask}
    bnez $t4, no_flush
    jal  flush_stats
no_flush:

    # ---- respond ----------------------------------------------------------
    li $v0, SYS_SEND
    move $a0, $s0
    move $a1, $s1
    syscall
    j worker_loop

# Merge the local counters into the shared statistics page.
flush_stats:
    beqz $s2, flush_ret
    la  $t3, stats
    lw  $t4, 0($t3)
    add $t4, $t4, $s2
    sw  $t4, 0($t3)            # total served
    lw  $t4, 4($t3)
    xor $t4, $t4, $s3
    sw  $t4, 4($t3)            # checksum
    lw  $t4, 8($t3)
    slt $at, $t4, $s5
    beqz $at, flush_no_max
    sw  $s5, 8($t3)
flush_no_max:
    li $s2, 0
    li $s3, 0
flush_ret:
    jr $ra

worker_done:
    jal flush_stats
    la $t0, done_count
    lw $t1, 0($t0)
    addi $t1, $t1, 1
    sw $t1, 0($t0)
    li $v0, SYS_EXIT
    li $a0, 0
    syscall
"""


DEFAULT_STATS_BATCH = 8


def source(workers, work_iters=DEFAULT_WORK_ITERS, classes=DEFAULT_CLASSES,
           stats_batch=DEFAULT_STATS_BATCH):
    if stats_batch & (stats_batch - 1):
        raise ValueError("stats_batch must be a power of two")
    class_page_words = "\n".join(
        "    .space 4096" for __ in range(classes))
    return _SOURCE_TEMPLATE.format(
        workers=workers,
        work_iters=work_iters,
        classes=classes,
        stats_batch_mask=stats_batch - 1,
        class_page_words=class_page_words,
    )


def program(workers, work_iters=DEFAULT_WORK_ITERS, classes=DEFAULT_CLASSES,
            stats_batch=DEFAULT_STATS_BATCH, layout=None):
    """Build the server image for a pool of *workers* threads."""
    return build_workload_image(
        source(workers, work_iters, classes, stats_batch),
        layout or MemoryLayout())
