"""Workloads (guest programs written in the reproduction's assembly).

The paper's evaluation runs SPEC2000 ``vpr`` (placement and routing), a
kMeans clustering application, a GOT/PLT randomization micro-program
(Table 5), and a multithreaded network server (Figure 9).  This package
provides behavioural equivalents assembled for our ISA:

* :mod:`repro.workloads.kmeans`    — k-means clustering (integer);
* :mod:`repro.workloads.vpr_place` — simulated-annealing placement;
* :mod:`repro.workloads.vpr_route` — BFS maze routing;
* :mod:`repro.workloads.gotplt`    — the TRR-vs-MLR randomization pair;
* :mod:`repro.workloads.server`    — the multithreaded request server.
"""

from repro.workloads.asmlib import std_constants, build_workload_image
from repro.workloads import figure8, gotplt, kmeans, server, vpr_place, vpr_route

__all__ = [
    "std_constants",
    "build_workload_image",
    "figure8",
    "gotplt",
    "kmeans",
    "server",
    "vpr_place",
    "vpr_route",
]
