"""The Table 5 workload: GOT/PLT randomization, TRR (software) vs MLR (RSE).

Section 5.3 describes the methodology exactly: because the simulator has
no dynamic-linking support, "the proposed approach embeds the dynamic
linking mechanism and the randomization algorithm inside a target
application, creating an application private dynamic loader.  The target
program ... includes a GOT and a PLT as part of its user data.  The
program has two versions, one for the pure software implementation and
one for the RSE module implementation."

* The **software (TRR) version** (1) allocates a new copy of the GOT,
  (2) copies the old GOT to the new GOT, and (3) rewrites every entry of
  the PLT, and terminates — all in loops of ordinary instructions.
* The **RSE (MLR) version** allocates the new GOT in software, then
  issues the CHECK sequence I5..I11 of Figure 3(A) and lets the MLR
  module do the copying and rewriting in hardware.

Both versions perform the PLT write-permission grant/restore dance
around the rewrite (I9 / I11).
"""

from repro.program.image import build_plt_entry
from repro.program.layout import MemoryLayout
from repro.workloads.asmlib import build_workload_image

#: Synthetic "library function" addresses the GOT points at.
SHLIB_FUNC_STRIDE = 64


def _got_words(layout, entries):
    return [layout.shlib_base + i * SHLIB_FUNC_STRIDE for i in range(entries)]


def _plt_section(layout, entries):
    """Emit the PLT as .word directives inside the text section."""
    got_base = layout.data_base          # got_old is the first data label
    lines = ["plt:"]
    for index in range(entries):
        for word in build_plt_entry(got_base + index * 4):
            lines.append("    .word 0x%08x" % word)
    return "\n".join(lines)


_COMMON_DATA = """
.data
got_old:
{got_words}
got_new:
    .space {got_bytes}
scratch:
    .space 2048
"""

# Fixed "loader library" work both versions share.  In the paper both
# programs embed an application-private dynamic loader whose fixed
# bookkeeping dominates the instruction counts (TRR ~6,3xx instructions
# at zero entries, RSE ~6,095 constant).  This prologue models that
# loader work: staging 512 words of loader metadata and checksumming it.
_LOADER_PROLOGUE = """
    # --- application-private dynamic loader bookkeeping (fixed cost) ----
    la  $t0, got_old
    la  $t1, scratch
    li  $t2, 512
ldr_copy:
    andi $t3, $t2, 127
    sll  $t3, $t3, 2
    add  $t4, $t0, $t3
    lw   $t5, 0($t4)
    add  $t4, $t1, $t3
    sw   $t5, 0($t4)
    addi $t2, $t2, -1
    bnez $t2, ldr_copy
    li  $t2, 900
    li  $t6, 0
ldr_sum:
    andi $t3, $t2, 127
    sll  $t3, $t3, 2
    add  $t4, $t1, $t3
    lw   $t5, 0($t4)
    add  $t6, $t6, $t5
    xor  $t6, $t6, $t2
    addi $t2, $t2, -1
    bnez $t2, ldr_sum
"""

_MPROTECT = """
    li  $v0, SYS_MPROTECT
    la  $a0, plt
    li  $a1, {plt_bytes}
    li  $a2, {perm}
    syscall
"""

_SOFTWARE_BODY = """
.text
{plt_section}

main:
{loader_prologue}
    # (1) the new GOT is statically allocated (got_new)

    # (2) copy the old GOT to the new GOT
    la  $t0, got_old
    la  $t1, got_new
    li  $t2, {entries}
copy_loop:
    lw  $t3, 0($t0)
    sw  $t3, 0($t1)
    addi $t0, $t0, 4
    addi $t1, $t1, 4
    addi $t2, $t2, -1
    bnez $t2, copy_loop

    # grant write permission to the PLT (I9)
{grant}

    # (3) rewrite every PLT entry to point into the new GOT
    la  $t0, plt               # current PLT entry
    la  $t4, got_new           # corresponding new GOT slot
    li  $t2, {entries}
rewrite_loop:
    # patch the lui word: keep opcode/reg bits, splice hi16(new slot)
    lw   $t6, 0($t0)
    srl  $t6, $t6, 16
    sll  $t6, $t6, 16
    srl  $t5, $t4, 16
    or   $t6, $t6, $t5
    sw   $t6, 0($t0)
    # patch the ori word: splice lo16(new slot)
    lw   $t6, 4($t0)
    srl  $t6, $t6, 16
    sll  $t6, $t6, 16
    andi $t5, $t4, 0xFFFF
    or   $t6, $t6, $t5
    sw   $t6, 4($t0)
    addi $t0, $t0, 16
    addi $t4, $t4, 4
    addi $t2, $t2, -1
    bnez $t2, rewrite_loop

    # restore read-only permission (I11)
{restore}
    halt
"""

_RSE_BODY = """
.text
{plt_section}

main:
{loader_prologue}
    chk MLR, NBLK, OP_ENABLE, 0

    # (1) the new GOT is statically allocated (got_new), "in software"

    # I5: old GOT address and size
    la  $a0, got_old
    li  $a1, {got_bytes}
    chk MLR, BLK, OP_MLR_GOT_OLD, 0

    # I6: new GOT address
    la  $a0, got_new
    li  $a1, 0
    chk MLR, BLK, OP_MLR_GOT_NEW, 0

    # I7: hardware GOT copy
    chk MLR, BLK, OP_MLR_COPY_GOT, 0

    # I8: PLT address and size
    la  $a0, plt
    li  $a1, {plt_bytes}
    chk MLR, BLK, OP_MLR_PLT_INFO, 0

    # I9: grant write permission to the PLT
{grant}

    # I10: hardware PLT rewrite
    chk MLR, BLK, OP_MLR_WRITE_PLT, 0

    # I11: restore read-only permission
{restore}
    halt
"""


def _build(body_template, entries, layout):
    layout = layout or MemoryLayout()
    got_words = "\n".join("    .word 0x%08x" % w
                          for w in _got_words(layout, entries))
    got_bytes = entries * 4
    plt_bytes = entries * 16
    source = (_COMMON_DATA + body_template).format(
        got_words=got_words,
        got_bytes=got_bytes,
        plt_bytes=plt_bytes,
        entries=entries,
        plt_section=_plt_section(layout, entries),
        loader_prologue=_LOADER_PROLOGUE,
        grant=_MPROTECT.format(plt_bytes=plt_bytes, perm=7),          # rwx
        restore=_MPROTECT.format(plt_bytes=plt_bytes, perm=5),        # r-x
    )
    image, asm = build_workload_image(source, layout,
                                      got_symbol="got_old",
                                      got_entries=entries,
                                      plt_symbol="plt",
                                      plt_entries=entries)
    return image, asm


def software_version(entries, layout=None):
    """The pure-software (TRR) randomization program."""
    return _build(_SOFTWARE_BODY, entries, layout)


def rse_version(entries, layout=None):
    """The MLR-module (RSE) randomization program."""
    return _build(_RSE_BODY, entries, layout)


PI_RAND_SOURCE = """
.text
main:
    chk MLR, NBLK, OP_ENABLE, 0
    # I1: pass the executable header assembled by the loader
    li  $a0, HDR_BASE
    li  $a1, HDR_SIZE
    chk MLR, BLK, OP_MLR_EXEC_HDR, 0
    # I2: randomize the position-independent regions
    chk MLR, BLK, OP_MLR_PI_RAND, 0
    # I3: read back the randomized bases and map the regions
    li  $t0, HDR_BASE
    lw  $s0, 0x100($t0)          # randomized shared library base
    lw  $s1, 0x104($t0)          # randomized stack segment base
    lw  $s2, 0x108($t0)          # randomized heap segment base
    li  $v0, SYS_MMAP
    move $a0, $s2
    li  $a1, 4096
    syscall
    halt
"""


def pi_rand_program(layout=None):
    """Position-independent randomization via the MLR module (I0..I3)."""
    return build_workload_image(PI_RAND_SOURCE, layout or MemoryLayout())
