"""Vulnerable-service program templates for the attack corpus.

:mod:`repro.security.attackgen` composes attack variants out of these
renderers the way :mod:`repro.difftest` composes random programs out of
idioms: each renderer takes the knobs a variant randomizes (frame
geometry, GOT width, delay counts, filler amounts, payload words) and
returns complete assembly source for one **self-classifying** guest
program.  Conventions every template follows:

* ``service_done`` is set to 1 immediately before the clean ``halt`` —
  "the service survived" is architectural state, not a heuristic;
* ``secret_flag`` receives the PWNED marker if and only if
  attacker-chosen code runs — "the hijack worked" is architectural
  state too;
* attacker inputs are **baked into .data as words** (no host-side pokes
  after load), so the identical program bytes run identically on the
  kernel/pipeline path and the functional-engine guest shim;
* every function reached only through an indirect transfer has an
  unreachable ``jal`` registration stub after the final ``halt``: the
  CFC's static CFG derives legal indirect landing sites from ``jal``
  targets and return sites, and a benign service must not trip it.

The hand-written attacks in :mod:`repro.security.attacks` predate these
templates and stay as the fixed reference points the generated
stack-smash and GOT-hijack rows are checked against.
"""

#: Service-completion / hijack-marker data block shared by all templates.
_COMMON_DATA = """\
service_done: .word 0
secret_flag:  .word 0
"""

_SET_DONE_AND_HALT = """\
    la $t0, service_done
    li $t1, 1
    sw $t1, 0($t0)
    halt
"""


def render_words(words, per_line=8):
    """``.word`` lines for a list of 32-bit values."""
    lines = []
    for index in range(0, len(words), per_line):
        chunk = words[index:index + per_line]
        lines.append("    .word " + ", ".join("0x%08X" % (w & 0xFFFFFFFF)
                                              for w in chunk))
    return "\n".join(lines) if lines else "    .word 0"


def registration_stub(names):
    """Unreachable ``jal`` block registering indirect-call targets."""
    if not names:
        return ""
    lines = ["cfc_register:"]
    lines += ["    jal %s" % name for name in names]
    return "\n".join(lines)


# ----------------------------------------------------------- stack smashing

_STACK_SMASH = """\
.data
request:
{request_words}
request_len:  .word {request_len}
{common_data}

.text
main:
{prologue}
    jal handle_request
{done_halt}

handle_request:
    addi $sp, $sp, -{frame}
    sw $ra, {ra_off}($sp)
    # memcpy(buffer, request, request_len): the planted bug — the copy
    # trusts the attacker-controlled length.
    la $t0, request
    lw $t1, request_len
    addi $t2, $sp, {buf_off}
copy_loop:
    beqz $t1, copy_done
    lb $t3, 0($t0)
    sb $t3, 0($t2)
    addi $t0, $t0, 1
    addi $t2, $t2, 1
    addi $t1, $t1, -1
    j copy_loop
copy_done:
    lw $ra, {ra_off}($sp)
    addi $sp, $sp, {frame}
    jr $ra
"""


def render_stack_smash(payload_words, frame, buf_off, ra_off, prologue=""):
    """The unbounded-copy service with the attack request baked in."""
    return _STACK_SMASH.format(
        request_words=render_words(payload_words),
        request_len=len(payload_words) * 4,
        common_data=_COMMON_DATA,
        prologue=prologue or "    # no defense prologue",
        done_halt=_SET_DONE_AND_HALT,
        frame=frame, buf_off=buf_off, ra_off=ra_off)


# -------------------------------------------------------------- GOT hijack

_GOT_SERVICE = """\
.data
got:
{got_words}
got_new:
    .space {got_bytes}
write_addr:   .word {write_addr}
write_index:  .word {write_index}
write_value:  .word {write_value}
log_done:     .word 0
{common_data}

.text
{plt_entries}
main:
{prologue}
    # --- the arbitrary-write bug (format-string analogue) ---------------
{write_block}
    # --- normal service work: call every logger through its PLT entry ---
{service_calls}
{done_halt}

{log_fns}
attacker_fn:
    la $t0, secret_flag
    li $t1, {marker}
    sw $t1, 0($t0)
    jr $ra

{registration}
"""

#: The three write primitives a GOT-hijack variant randomizes over.
WRITE_PRIMITIVES = ("word", "bytes", "indexed")

_WRITE_BLOCKS = {
    # One aligned word store — the classic primitive.
    "word": """\
    lw $t0, write_addr
    lw $t1, write_value
    sw $t1, 0($t0)""",
    # Four byte stores, low byte first — a %hhn-style primitive.
    "bytes": """\
    lw $t0, write_addr
    lw $t1, write_value
    sb $t1, 0($t0)
    srl $t1, $t1, 8
    sb $t1, 1($t0)
    srl $t1, $t1, 8
    sb $t1, 2($t0)
    srl $t1, $t1, 8
    sb $t1, 3($t0)""",
    # Base + scaled index — an out-of-bounds table write.
    "indexed": """\
    lw $t0, write_addr
    lw $t2, write_index
    sll $t2, $t2, 2
    add $t0, $t0, $t2
    lw $t1, write_value
    sw $t1, 0($t0)""",
}


def _plt_entry(index):
    return """\
plt{i}:
    lui $at, hi(got)
    ori $at, $at, lo(got)
    lw  $at, {off}($at)
    jr  $at""".format(i=index, off=4 * index)


def _log_fn(index):
    return """\
log_fn{i}:
    la $t0, log_done
    lw $t1, log_done
    addi $t1, $t1, 1
    sw $t1, 0($t0)
    jr $ra""".format(i=index)


def render_got_service(entries, primitive, write_addr, write_index,
                       write_value, marker, prologue="", racer=None,
                       victim=0, main_delay=0):
    """The multi-entry GOT/PLT service with the write bug baked in.

    With *racer* (assembly text for a second thread plus its spawn/
    validate/delay scaffolding rendered by the caller through
    :func:`render_race_main`), the same data/plt/log scaffolding hosts
    the TOCTOU variant; without it the write block runs inline in main.
    """
    got_words = "\n".join("    .word log_fn%d" % i for i in range(entries))
    plt_entries = "\n\n".join(_plt_entry(i) for i in range(entries))
    log_fns = "\n\n".join(_log_fn(i) for i in range(entries))
    if racer is None:
        write_block = _WRITE_BLOCKS[primitive]
        service_calls = "\n".join("    jal plt%d" % i for i in range(entries))
        tail = ""
    else:
        write_block = "    # (write primitive lives in the racer thread)"
        service_calls = render_race_main(entries, victim, main_delay)
        tail = racer
    source = _GOT_SERVICE.format(
        got_words=got_words,
        got_bytes=4 * entries,
        write_addr=write_addr, write_index=write_index,
        write_value=write_value,
        common_data=_COMMON_DATA,
        plt_entries=plt_entries,
        prologue=prologue or "    # no defense prologue",
        write_block=write_block,
        service_calls=service_calls,
        done_halt=_SET_DONE_AND_HALT,
        log_fns=log_fns,
        marker=marker,
        registration=registration_stub(
            ["log_fn%d" % i for i in range(entries)]))
    return source + ("\n" + tail if tail else "")


def render_race_main(entries, victim, main_delay):
    """Main-thread body of the TOCTOU race: spawn, validate, delay, call.

    The service *does* validate the GOT entry before using it — the bug
    is the yield window between the check and the use.
    """
    return """\
    la $a0, racer
    li $v0, SYS_SPAWN
    syscall
    # validate the entry about to be called (time-of-check) ...
    la $t0, got
    lw $t0, {off}($t0)
    la $t1, log_fn{victim}
    bne $t0, $t1, refuse
    li $t5, {delay}
main_spin:
    beqz $t5, do_call
    li $v0, SYS_YIELD
    syscall
    addi $t5, $t5, -1
    j main_spin
do_call:
    # ... and use it (time-of-use), one yield window later.
    jal plt{victim}
refuse:""".format(off=4 * victim, victim=victim, delay=main_delay)


def render_racer_thread(racer_delay):
    """The malicious thread of the TOCTOU race: delay, write, exit."""
    return """\
racer:
    li $t5, {delay}
racer_spin:
    beqz $t5, racer_write
    li $v0, SYS_YIELD
    syscall
    addi $t5, $t5, -1
    j racer_spin
racer_write:
    lw $t0, write_addr
    lw $t1, write_value
    sw $t1, 0($t0)
    li $v0, SYS_EXIT
    syscall""".format(delay=racer_delay)


# ------------------------------------------------------- self-modifying code

_SMC_PATCH = """\
.data
patch_addr:   .word {patch_addr}
patch_word:   .word {patch_word}
{common_data}

.text
main:
{prologue}
    # Open the text page for writing (2004-era mprotect gadget), then
    # apply the baked patch: the planted arbitrary-write-to-text bug.
    li $v0, SYS_MPROTECT
    la $a0, victim_site
    li $a1, 4
    li $a2, 7
    syscall
    lw $t0, patch_addr
    lw $t1, patch_word
    sw $t1, 0($t0)
{reprotect}
    jal service_fn
{done_halt}

service_fn:
{filler_pre}
victim_site:
    j victim_return
{filler_post}
victim_return:
    jr $ra

attacker_fn:
    la $t0, secret_flag
    li $t1, {marker}
    sw $t1, 0($t0)
    halt

cfc_register:
    jal service_fn
"""

_REPROTECT = """\
    li $v0, SYS_MPROTECT
    la $a0, victim_site
    li $a1, 4
    li $a2, 5
    syscall"""


def render_smc_patch(patch_addr, patch_word, marker, filler_pre=0,
                     filler_post=0, reprotect=False, prologue=""):
    """The self-patching service: overwrite a direct jump in .text."""
    return _SMC_PATCH.format(
        patch_addr=patch_addr, patch_word=patch_word,
        common_data=_COMMON_DATA,
        prologue=prologue or "    # no defense prologue",
        reprotect=_REPROTECT if reprotect else "    # page left writable",
        done_halt=_SET_DONE_AND_HALT,
        filler_pre="\n".join(["    nop"] * filler_pre) or "    nop",
        filler_post="\n".join(["    nop"] * filler_post) or "    nop",
        marker=marker)


# --------------------------------------------------------- malicious thread

_THREAD_SMASH = """\
.data
attack_addrs:
{addr_words}
attack_words:
{value_words}
attack_count: .word {count}
{common_data}

.text
main:
{prologue}
    la $a0, attacker_thread
    li $v0, SYS_SPAWN
    syscall
    jal service_wait
{done_halt}

service_wait:
    addi $sp, $sp, -{frame}
    sw $ra, {ra_off}($sp)
    li $a0, {nap_cycles}
    li $v0, SYS_SLEEP
    syscall
    lw $ra, {ra_off}($sp)
    addi $sp, $sp, {frame}
    jr $ra

attacker_thread:
    li $a0, {attacker_delay}
    li $v0, SYS_SLEEP
    syscall
    # Cross-thread smash: write shellcode + return address into where
    # the attacker *believes* the sleeping main thread's frame lives.
    la $t0, attack_addrs
    la $t1, attack_words
    lw $t2, attack_count
write_loop:
    beqz $t2, write_done
    lw $t3, 0($t0)
    lw $t4, 0($t1)
    sw $t4, 0($t3)
    addi $t0, $t0, 4
    addi $t1, $t1, 4
    addi $t2, $t2, -1
    j write_loop
write_done:
    li $v0, SYS_EXIT
    syscall
"""


def render_thread_smash(addrs, values, frame, ra_off, nap_cycles,
                        attacker_delay, prologue=""):
    """Service naps in a frame; a malicious sibling thread smashes it."""
    if len(addrs) != len(values):
        raise ValueError("addrs/values length mismatch: %d != %d"
                         % (len(addrs), len(values)))
    return _THREAD_SMASH.format(
        addr_words=render_words(addrs),
        value_words=render_words(values),
        count=len(addrs),
        common_data=_COMMON_DATA,
        prologue=prologue or "    # no defense prologue",
        done_halt=_SET_DONE_AND_HALT,
        frame=frame, ra_off=ra_off,
        nap_cycles=nap_cycles, attacker_delay=attacker_delay)
