"""Table 5: TRR (software) vs RSE (MLR module) GOT/PLT randomization.

For each GOT size the two program versions of Section 5.3 run to
completion; the metrics are total #cycles and #instructions, with the
RSE-over-TRR improvement percentages — the paper reports 18-30% cycle
improvement and instruction counts that grow linearly for TRR but stay
flat for the RSE version.

Also measured: the fixed penalty of position-independent randomization
(the paper: 56 cycles; ours is dominated by the MAU's header load and
result store at the 19/3 bus timing).
"""

from repro.analysis.stats import RunRecord, improvement_pct
from repro.analysis.tables import format_table
from repro.system import build_machine
from repro.workloads import gotplt

PAPER_GOT_SIZES = (128, 256, 384, 512, 640, 768, 896, 1024)
# Quick mode stays at or near the paper's smallest size (128): the RSE
# win is a crossover, not a law — the MLR path pays a fixed MAU setup
# cost while the software TRR loop scales linearly (and benefits from
# store-to-load forwarding), so far below 128 entries TRR can win.
QUICK_GOT_SIZES = (64, 96, 128)


def run_pair(entries, max_cycles=20_000_000):
    """Run both versions for one GOT size; returns (trr_rec, rse_rec)."""
    sw_image, __ = gotplt.software_version(entries)
    sw_machine = build_machine()
    result = sw_machine.run_program(sw_image, max_cycles=max_cycles)
    assert result.reason == "halt", result
    trr = RunRecord.from_machine("trr-%d" % entries, sw_machine)

    rse_image, __ = gotplt.rse_version(entries)
    rse_machine = build_machine(with_rse=True, modules=("mlr",))
    result = rse_machine.run_program(rse_image, max_cycles=max_cycles)
    assert result.reason == "halt", result
    rse = RunRecord.from_machine("rse-%d" % entries, rse_machine)
    return trr, rse


def run_table5(quick=False):
    """Returns ``{entries: (trr_record, rse_record)}``."""
    sizes = QUICK_GOT_SIZES if quick else PAPER_GOT_SIZES
    return {entries: run_pair(entries) for entries in sizes}


def format_table5(results):
    rows = []
    for entries, (trr, rse) in sorted(results.items()):
        rows.append([
            entries,
            trr.cycles, rse.cycles,
            "%.0f%%" % improvement_pct(trr.cycles, rse.cycles),
            trr.instret, rse.instret,
            "%.0f%%" % improvement_pct(trr.instret, rse.instret),
        ])
    return format_table(
        ["GOT entries", "TRR #cycles", "RSE #cycles", "cyc improv.",
         "TRR #instr", "RSE #instr", "instr improv."],
        rows,
        title="Table 5: Performance of the MLR module (TRR vs RSE)")


def measure_pi_rand_penalty():
    """Module-internal latency of position-independent randomization.

    The paper reports a fixed 56-cycle penalty; we report the measured
    CHECK-to-completion latency of the MLR module's PI path.
    """
    machine = build_machine(with_rse=True, modules=("mlr",))
    image, __ = gotplt.pi_rand_program()
    result = machine.run_program(image, max_cycles=2_000_000)
    assert result.reason == "halt", result
    return result.snapshot["rse"]["modules"]["MLR"]["pi_rand_cycles"]
