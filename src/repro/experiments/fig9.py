"""Figure 9: multithreaded-server runtime and saved pages vs thread count.

"We vary the number of threads and measure the time for the server to
handle one hundred requests" (Section 5.4).  Three series come out:

* runtime **without** DDT (bottom curve shape: falls as added threads
  expose I/O parallelism, then flattens once the CPU is saturated);
* runtime **with** DDT (tracks the first curve plus the SavePage cost,
  a gap that widens with sharing);
* the **number of saved memory pages** (grows with thread count as more
  page-ownership migrations happen).
"""

from repro.analysis.stats import overhead_pct
from repro.analysis.tables import format_table
from repro.kernel.kernel import KernelConfig
from repro.rse.check import MODULE_DDT
from repro.system import build_machine
from repro.workloads import server

PAPER_THREAD_COUNTS = tuple(range(1, 11))
QUICK_THREAD_COUNTS = (1, 2, 4)

#: The paper serves 100 requests; 40 keeps the pure-Python simulation
#: budget sane while preserving every trend (see EXPERIMENTS.md).
DEFAULT_REQUESTS = 40
DEFAULT_WORK_ITERS = 4000

#: SavePage handler cost: one overlapped 4 KB DMA-style copy over the
#: pipelined memory bus (19 + 3/chunk) plus handler slack.
SAVEPAGE_COST = 1860


def _kernel_config():
    # Request latency spread up to ~3x the per-request compute so the
    # pool stops gaining around four threads (the paper's knee).
    return KernelConfig(quantum_cycles=4000,
                        io_recv_latency=3000,
                        io_recv_jitter=30000,
                        io_send_cost=100,
                        savepage_cost=SAVEPAGE_COST)


class ServerRun:
    """One server execution's measurements."""

    def __init__(self, threads, with_ddt, cycles, saved_pages,
                 dependencies, responses):
        self.threads = threads
        self.with_ddt = with_ddt
        self.cycles = cycles
        self.saved_pages = saved_pages
        self.dependencies = dependencies
        self.responses = responses


def run_server(threads, with_ddt, requests=DEFAULT_REQUESTS,
               work_iters=DEFAULT_WORK_ITERS, max_cycles=100_000_000):
    modules = ("ddt",) if with_ddt else ()
    machine = build_machine(with_rse=with_ddt, modules=modules,
                            kernel_config=_kernel_config())
    if with_ddt:
        machine.rse.enable_module(MODULE_DDT)
    image, __ = server.program(threads, work_iters=work_iters)
    machine.kernel.set_request_source(requests)
    machine.kernel.load_process(image)
    result = machine.kernel.run(max_cycles=max_cycles)
    assert result.reason == "halt", result
    assert len(machine.kernel.responses) == requests
    snapshot = result.snapshot
    ddt_doc = snapshot["rse"]["modules"]["DDT"] if with_ddt else None
    return ServerRun(
        threads, with_ddt,
        cycles=result.cycles,
        saved_pages=snapshot["kernel"]["checkpoints"]["saves_total"],
        dependencies=ddt_doc["dependencies_logged"] if ddt_doc else 0,
        responses=dict(machine.kernel.responses),
    )


def run_fig9(quick=False, requests=None):
    """Returns ``{threads: (plain_run, ddt_run)}``."""
    counts = QUICK_THREAD_COUNTS if quick else PAPER_THREAD_COUNTS
    requests = requests or (24 if quick else DEFAULT_REQUESTS)
    return {threads: (run_server(threads, False, requests=requests),
                      run_server(threads, True, requests=requests))
            for threads in counts}


def chart_fig9(results):
    """ASCII rendition of the Figure 9 plot (both axes of the paper)."""
    from repro.analysis.charts import ascii_chart

    threads = sorted(results)
    runtime = ascii_chart(
        [("w/o DDT", [(t, results[t][0].cycles / 1e6) for t in threads]),
         ("w/ DDT", [(t, results[t][1].cycles / 1e6) for t in threads])],
        title="Execution time (Mcycles) vs number of threads",
        x_label="threads")
    pages = ascii_chart(
        [("saved pages", [(t, results[t][1].saved_pages)
                          for t in threads])],
        title="Number of saved memory pages vs number of threads",
        x_label="threads", height=8)
    return runtime + "\n\n" + pages


def format_fig9(results):
    rows = []
    for threads, (plain, ddt) in sorted(results.items()):
        rows.append([
            threads,
            "%.3f" % (plain.cycles / 1e6),
            "%.3f" % (ddt.cycles / 1e6),
            "%.1f%%" % overhead_pct(plain.cycles, ddt.cycles),
            ddt.saved_pages,
            ddt.dependencies,
        ])
    return format_table(
        ["Threads", "Runtime w/o DDT (Mcyc)", "Runtime w/ DDT (Mcyc)",
         "DDT overhead", "Saved pages", "Deps logged"],
        rows,
        title="Figure 9: Performance Evaluation for DDT")
