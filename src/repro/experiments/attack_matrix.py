"""Standing experiment: the module × attack-class coverage matrix.

Tables 4 and 5 of the paper demonstrate each security module against
one hand-crafted exploit.  This harness is the generative extension:
a seeded corpus of randomized attack variants per (module
configuration, attack class) cell, with Wilson confidence intervals on
the stopped rate — the quantitative version of the paper's qualitative
"the attack was foiled" rows.  Thin wrapper over
:func:`repro.security.coverage.attack_matrix` so the CLI experiment
front-end and the test suite share one entry point.
"""

from repro.security.coverage import attack_matrix, format_attack_matrix

#: Full-run corpus size per cell; ``quick`` shrinks it for the suite.
FULL_VARIANTS = 40
QUICK_VARIANTS = 6

#: The quick axes keep one representative per defense family.
QUICK_CLASSES = ("stack-smash", "got-hijack", "smc-patch")
QUICK_CONFIGS = ("none", "mlr", "cfc")


def run_attack_matrix(quick=False, seed=2004, options=None, progress=None):
    """Run the standing matrix; returns the coverage JSON document."""
    if quick:
        return attack_matrix(classes=QUICK_CLASSES, configs=QUICK_CONFIGS,
                             variants=QUICK_VARIANTS, seed=seed,
                             options=options, progress=progress)
    return attack_matrix(variants=FULL_VARIANTS, seed=seed,
                         options=options, progress=progress)


def format_matrix(doc):
    return format_attack_matrix(doc)
