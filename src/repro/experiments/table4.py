"""Table 4: framework and ICM overhead; CHECK I-cache pressure.

Three machine configurations per benchmark (Section 5):

1. **Baseline** — no RSE; memory timing 18 cycles first chunk / 2 per
   chunk.
2. **Framework** — the RSE attached but no modules instantiated; the
   only effect is the memory arbiter (19/3 timing).
3. **Framework + ICM** — the ICM instantiated and "the benchmark is
   instrumented to check all control-flow instructions" (runtime CHECK
   insertion).

Plus the cache-overhead experiment: the baseline machine running the
NOP-rewritten binary, reporting il1/il2 accesses and miss rates with and
without the CHECK(=NOP) footprint.
"""

from repro.analysis.stats import RunRecord, overhead_pct
from repro.analysis.tables import format_table
from repro.memory.hierarchy import CacheConfig
from repro.program.layout import MemoryLayout
from repro.rse.check import MODULE_ICM
from repro.rse.modules.icm import build_checker_memory, make_icm_injector
from repro.system import build_machine
from repro.workloads import kmeans, vpr_place, vpr_route
from repro.workloads.asmlib import build_workload_image, \
    insert_nops_before_control

#: Cache geometry for the Table 4 runs, scaled 1/16 from Figure 1.
#:
#: Rationale: the paper's workloads run tens of millions of cycles over
#: working sets far larger than its 8 KB / 64 KB / 128 KB caches, so its
#: simulations have *sustained* L2-to-memory traffic — which is exactly
#: what the framework's arbiter perturbs.  A pure-Python cycle simulator
#: forces workloads scaled down by ~100x; scaling the cache hierarchy by
#: 1/16 restores the paper's miss behaviour (working set vs capacity) so
#: the framework-overhead experiment measures the same phenomenon.  The
#: library default (``default_cache_configs``) remains the Figure 1
#: geometry.
def scaled_cache_configs():
    # il1 is scaled harder (1/64) than the rest (1/16) because our
    # workload *code* footprints shrink more than their data footprints
    # relative to the SPEC originals; this preserves the paper's
    # code-to-il1 ratio and with it the Table 4 il1 miss-rate regime.
    return {
        "il1": CacheConfig("il1", 128, 1),
        "dl1": CacheConfig("dl1", 512, 1),
        "il2": CacheConfig("il2", 4 * 1024, 2),
        "dl2": CacheConfig("dl2", 8 * 1024, 2),
    }


def workload_sources(quick=False):
    """Assembly sources for the three Table 4 benchmarks.

    The full configuration is scaled for a pure-Python cycle simulator
    (the paper itself scaled kMeans down for simulation time); ``quick``
    shrinks further for the test suite.
    """
    if quick:
        return {
            "vpr-place": vpr_place.source(cells=24, nets=36, moves=200),
            "vpr-route": vpr_route.source(12, 12, routes=4),
            "kmeans": kmeans.source(pattern_count=40, clusters=4,
                                    iterations=1),
        }
    return {
        # Working sets sized to exceed the scaled dl2 (8 KB), as the
        # paper's full-size inputs exceed its 128 KB dl2.
        "vpr-place": vpr_place.source(cells=512, nets=768, moves=1500,
                                      grid=64),
        "vpr-route": vpr_route.source(36, 36, routes=18),
        "kmeans": kmeans.source(pattern_count=1600, clusters=16,
                                iterations=1),
    }


def _load_bare(machine, source):
    image, asm = build_workload_image(source, MemoryLayout())
    machine.kernel.load_process(image)
    return image, asm


def run_baseline(source, max_cycles=20_000_000):
    machine = build_machine(cache_configs=scaled_cache_configs())
    _load_bare(machine, source)
    result = machine.kernel.run(max_cycles=max_cycles)
    assert result.reason == "halt", result
    return RunRecord.from_machine("baseline", machine)


def run_framework(source, max_cycles=20_000_000):
    """RSE attached, no modules instantiated (arbiter effect only)."""
    machine = build_machine(with_rse=True,
                            cache_configs=scaled_cache_configs())
    _load_bare(machine, source)
    result = machine.kernel.run(max_cycles=max_cycles)
    assert result.reason == "halt", result
    return RunRecord.from_machine("framework", machine)


def run_framework_icm(source, max_cycles=40_000_000):
    """RSE + ICM checking every control-flow instruction."""
    machine = build_machine(with_rse=True, modules=("icm",),
                            cache_configs=scaled_cache_configs())
    image, asm = _load_bare(machine, source)
    icm = machine.module(MODULE_ICM)
    text = image.segment(".text")
    checker_map = build_checker_memory(machine.memory, text.base,
                                       len(text.data))
    icm.configure(checker_map)
    machine.rse.enable_module(MODULE_ICM)
    machine.pipeline.check_injector = make_icm_injector(checker_map)
    result = machine.kernel.run(max_cycles=max_cycles)
    assert result.reason == "halt", result
    record = RunRecord.from_machine("framework+icm", machine)
    icm_doc = record.snapshot["rse"]["modules"]["ICM"]
    record.extra.update(
        icm_hit_rate=icm_doc["cache_hit_rate"],
        icm_checks=icm_doc["checks_completed"],
        check_wait_cycles=record.pipeline_stats["check_wait_cycles"],
    )
    return record


def run_with_check_nops(source, max_cycles=20_000_000):
    """Baseline machine, NOP-rewritten binary (cache-pressure method)."""
    machine = build_machine(cache_configs=scaled_cache_configs())
    _load_bare(machine, insert_nops_before_control(source))
    result = machine.kernel.run(max_cycles=max_cycles)
    assert result.reason == "halt", result
    return RunRecord.from_machine("with-checks", machine)


def run_table4(quick=False):
    """Run every configuration; returns ``{benchmark: {config: record}}``."""
    results = {}
    for name, source in workload_sources(quick).items():
        results[name] = {
            "baseline": run_baseline(source),
            "framework": run_framework(source),
            "framework+icm": run_framework_icm(source),
            "with-checks": run_with_check_nops(source),
        }
    return results


def format_table4(results):
    """Render the paper-shaped Table 4 from :func:`run_table4` output."""
    names = list(results)
    M = 1e6

    def row(label, getter, fmt="%.4f"):
        return [label] + [fmt % getter(results[name]) for name in names]

    rows = [
        row("Baseline cycles (M)", lambda r: r["baseline"].cycles / M),
        row("Framework cycles (M)", lambda r: r["framework"].cycles / M),
        row("Framework+ICM cycles (M)",
            lambda r: r["framework+icm"].cycles / M),
        row("Framework %% overhead",
            lambda r: overhead_pct(r["baseline"].cycles,
                                   r["framework"].cycles), "%.2f%%"),
        row("Framework+ICM %% overhead",
            lambda r: overhead_pct(r["baseline"].cycles,
                                   r["framework+icm"].cycles), "%.2f%%"),
        row("#il1 accesses (M), baseline",
            lambda r: r["baseline"].cache("il1", "accesses") / M),
        row("#il1 accesses (M), with CHECKs",
            lambda r: r["with-checks"].cache("il1", "accesses") / M),
        row("il1 miss rate, baseline",
            lambda r: 100 * r["baseline"].cache("il1", "miss_rate"), "%.2f%%"),
        row("il1 miss rate, with CHECKs",
            lambda r: 100 * r["with-checks"].cache("il1", "miss_rate"),
            "%.2f%%"),
        row("#il2 accesses (K), baseline",
            lambda r: r["baseline"].cache("il2", "accesses") / 1e3),
        row("#il2 accesses (K), with CHECKs",
            lambda r: r["with-checks"].cache("il2", "accesses") / 1e3),
        row("il2 miss rate, baseline",
            lambda r: 100 * r["baseline"].cache("il2", "miss_rate"), "%.2f%%"),
        row("il2 miss rate, with CHECKs",
            lambda r: 100 * r["with-checks"].cache("il2", "miss_rate"),
            "%.2f%%"),
    ]
    return format_table(["Metric"] + names, rows,
                        title="Table 4: Framework Evaluation Results")


def average_overheads(results):
    """(avg framework %, avg framework+ICM %) across benchmarks."""
    framework = [overhead_pct(r["baseline"].cycles, r["framework"].cycles)
                 for r in results.values()]
    icm = [overhead_pct(r["baseline"].cycles, r["framework+icm"].cycles)
           for r in results.values()]
    return (sum(framework) / len(framework), sum(icm) / len(icm))
