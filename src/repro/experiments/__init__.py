"""Experiment harnesses regenerating every table and figure of the paper.

Each module builds the machines, runs the workloads and returns both raw
records and a paper-style formatted table:

* :mod:`repro.experiments.table4` — framework / ICM overhead and the
  I-cache CHECK-pressure experiment (Table 4);
* :mod:`repro.experiments.table5` — TRR vs MLR GOT/PLT randomization
  (Table 5) and the Section 5.3 position-independent penalty;
* :mod:`repro.experiments.fig9`   — the multithreaded-server DDT sweep
  (Figure 9);
* :mod:`repro.experiments.ablations` — design-choice studies called out
  in Table 3 (arbiter placement, ICM cache size, DDT lag window);
* :mod:`repro.experiments.attack_matrix` — the generative module ×
  attack-class detection-coverage matrix (quantitative Tables 4/5).

The ``quick`` flag on every entry point shrinks workloads for use in the
test suite; benchmarks run the full configuration.
"""

from repro.experiments import (ablations, attack_matrix, fig9, table4,
                               table5)

__all__ = ["table4", "table5", "fig9", "ablations", "attack_matrix"]
