"""Ablations of design choices the paper argues for in Table 3 / Section 4.

1. **Arbiter placement** — Table 3's rationale: putting the RSE memory
   arbiter on the hot L1<->CPU path would be "very prominent (Amdahl's
   law)"; on the L2<->memory path it is cheap.  We simulate both.
2. **ICM cache size** — Section 5.2 simulates a 256-entry Icm_Cache; the
   sweep shows how hit rate and check-stall cycles move with size.
3. **DDT logging lag** — Section 4.2.1 notes the module "may lag behind
   the pipeline by at most 1 cycle" and can miss a dependency that
   arrives inside the window; the ablation quantifies the miss rate.
"""

from repro.analysis.stats import RunRecord, overhead_pct
from repro.analysis.tables import format_table
from repro.kernel.kernel import KernelConfig
from repro.memory.bus import BASELINE_TIMING, FRAMEWORK_TIMING
from repro.program.layout import MemoryLayout
from repro.rse.check import MODULE_DDT, MODULE_ICM
from repro.rse.modules.ddt import DDT
from repro.rse.modules.icm import ICM, build_checker_memory, make_icm_injector
from repro.system import build_machine
from repro.workloads.asmlib import build_workload_image


# ------------------------------------------------------ arbiter placement

def run_arbiter_placement(quick=False):
    """Cycles for: no arbiter, arbiter on the memory path, arbiter on L1.

    Each design point runs a short warm-up, then
    :meth:`~repro.system.Machine.reset_stats` zeroes every counter so
    the reported cycles measure the steady state all three share, not
    the identical cold-cache transient.

    Returns ``{"baseline": c0, "memory_path": c1, "l1_path": c2}``.
    """
    from repro.experiments.table4 import scaled_cache_configs, \
        workload_sources

    source = workload_sources(quick)["vpr-place"]
    warmup = 4_000 if quick else 100_000

    def run(timing, l1_extra):
        machine = build_machine(bus_timing=timing,
                                cache_configs=scaled_cache_configs())
        machine.hierarchy.l1_latency += l1_extra
        image, __ = build_workload_image(source, MemoryLayout())
        machine.kernel.load_process(image)
        warm = machine.kernel.run(max_cycles=warmup)
        assert warm.reason == "max_cycles", warm
        machine.reset_stats()
        result = machine.kernel.run(max_cycles=40_000_000)
        assert result.reason == "halt", result
        return result.snapshot["pipeline"]["cycles"]

    return {
        "baseline": run(BASELINE_TIMING, 0),
        "memory_path": run(FRAMEWORK_TIMING, 0),     # the paper's choice
        "l1_path": run(BASELINE_TIMING, 1),          # the rejected design
    }


def format_arbiter_placement(results):
    base = results["baseline"]
    rows = [
        ["no arbiter (baseline)", base, "-"],
        ["arbiter on L2<->memory path (paper)", results["memory_path"],
         "%.2f%%" % overhead_pct(base, results["memory_path"])],
        ["arbiter on L1<->CPU path (rejected)", results["l1_path"],
         "%.2f%%" % overhead_pct(base, results["l1_path"])],
    ]
    return format_table(["Design point", "Cycles", "Overhead"], rows,
                        title="Ablation: RSE memory-arbiter placement")


# --------------------------------------------------------- ICM cache size

def _icm_stress_source(sites, sweeps):
    """A workload with *sites* distinct checked branch PCs.

    Loop-heavy benchmarks have only a handful of control-flow sites, all
    of which fit even a tiny Icm_Cache; exercising capacity needs a
    large static branch footprint swept repeatedly (LRU thrashes below
    capacity and saturates above it).
    """
    lines = ["main:", "    li $s0, %d" % sweeps, "sweep:", "    li $t0, 1"]
    for index in range(sites):
        lines.append("    beqz $t0, site%d" % index)          # never taken
        lines.append("site%d:" % index)
        lines.append("    addi $t1, $t1, 1")
    lines += ["    addi $s0, $s0, -1", "    bnez $s0, sweep", "    halt"]
    return "\n".join(lines)


def run_icm_cache_sweep(sizes=(32, 64, 128, 256, 512), quick=False,
                        sites=384, sweeps=25):
    """Per-size: cycles, Icm_Cache hit rate, commit stalls on CHECKs."""
    if quick:
        sites, sweeps = 96, 6
    source = _icm_stress_source(sites, sweeps)
    rows = {}
    for size in sizes:
        machine = build_machine(with_rse=True)
        icm = machine.rse.attach(ICM(cache_entries=size))
        image, __ = build_workload_image(source, MemoryLayout())
        machine.kernel.load_process(image)
        text = image.segment(".text")
        checker_map = build_checker_memory(machine.memory, text.base,
                                           len(text.data))
        icm.configure(checker_map)
        machine.rse.enable_module(MODULE_ICM)
        machine.pipeline.check_injector = make_icm_injector(checker_map)
        result = machine.kernel.run(max_cycles=60_000_000)
        assert result.reason == "halt", result
        doc = result.snapshot
        rows[size] = {
            "cycles": doc["pipeline"]["cycles"],
            "hit_rate": doc["rse"]["modules"]["ICM"]["cache_hit_rate"],
            "check_wait_cycles": doc["pipeline"]["check_wait_cycles"],
        }
    return rows


def format_icm_cache_sweep(results):
    rows = [[size, data["cycles"], "%.1f%%" % (100 * data["hit_rate"]),
             data["check_wait_cycles"]]
            for size, data in sorted(results.items())]
    return format_table(
        ["Icm_Cache entries", "Cycles", "Hit rate", "Check-stall cycles"],
        rows, title="Ablation: ICM cache size")


# ------------------------------------------------------------ DDT lag

#: Worst-case stress for the 1-cycle logging window: PRODUCERS threads
#: each write one private page; a consumer then reads all those pages in
#: a straight unrolled burst, so dependency-creating loads commit in
#: adjacent cycles — exactly the case where the lagging module "fails to
#: log the dependency due to this instruction".
_LAG_PRODUCERS = 6

_LAG_STRESS = """
.data
.align 12
{page_decls}
ready: .space 4096

.text
main:
{spawns}
    li $s0, {producers} + 2          # settle turns before consuming
settle:
    li $v0, SYS_YIELD
    syscall
    addi $s0, $s0, -1
    bnez $s0, settle
    # consume: back-to-back reads of every producer page
{reads}
    halt

{producer_bodies}
"""


def _lag_source():
    page_decls = "\n".join("page%d: .space 4096" % i
                           for i in range(_LAG_PRODUCERS))
    spawns = "\n".join(
        "    la $a0, producer%d\n    li $v0, SYS_SPAWN\n    syscall" % i
        for i in range(_LAG_PRODUCERS))
    reads = "\n".join(
        "    la $t%d, page%d\n    lw $t%d, 0($t%d)" % (i % 8, i, i % 8, i % 8)
        for i in range(_LAG_PRODUCERS))
    bodies = "\n".join("""
producer%d:
    la $t0, page%d
    li $t1, %d
    sw $t1, 0($t0)
    li $v0, SYS_EXIT
    syscall""" % (i, i, i + 1) for i in range(_LAG_PRODUCERS))
    return _LAG_STRESS.format(page_decls=page_decls, spawns=spawns,
                              producers=_LAG_PRODUCERS, reads=reads,
                              producer_bodies=bodies)


def run_ddt_lag():
    """Dependencies logged vs missed when the 1-cycle lag is modelled."""
    out = {}
    for model_lag in (False, True):
        machine = build_machine(
            with_rse=True,
            kernel_config=KernelConfig(quantum_cycles=100_000))
        ddt = machine.rse.attach(DDT(model_lag=model_lag))
        ddt.save_page_handler = machine.kernel.checkpoint_page
        machine.rse.enable_module(MODULE_DDT)
        image, __ = build_workload_image(_lag_source(), MemoryLayout())
        machine.kernel.load_process(image)
        result = machine.kernel.run(max_cycles=20_000_000)
        assert result.reason == "halt", result
        doc = result.snapshot["rse"]["modules"]["DDT"]
        out["lagged" if model_lag else "ideal"] = {
            "logged": doc["dependencies_logged"],
            "missed": doc["dependencies_missed"],
        }
    return out


def format_ddt_lag(results):
    rows = [[name, data["logged"], data["missed"]]
            for name, data in sorted(results.items())]
    return format_table(["DDT model", "Dependencies logged", "Missed"],
                        rows, title="Ablation: DDT 1-cycle logging lag")


# ----------------------------------------------------- ICM coverage scope

def run_icm_coverage(quick=False):
    """Overhead of widening ICM coverage (Section 4.3's three classes).

    The checked instruction "can be a control flow, load/store or a
    critical code section"; checking everything maximises coverage and
    cost.  Returns ``{scope: {"cycles", "checks"}}`` including the
    unprotected baseline.
    """
    from repro.experiments.table4 import scaled_cache_configs
    from repro.rse.modules.icm import (
        ICM,
        build_checker_memory,
        cover_all,
        cover_control,
        cover_memory,
        make_icm_injector,
    )
    from repro.rse.check import MODULE_ICM
    from repro.workloads import kmeans

    source = kmeans.source(pattern_count=40, clusters=4, iterations=1) \
        if quick else kmeans.source()
    results = {}
    for scope, predicate in (("none", None),
                             ("control-flow", cover_control),
                             ("loads/stores", cover_memory),
                             ("all instructions", cover_all)):
        machine = build_machine(with_rse=True,
                                cache_configs=scaled_cache_configs())
        image, __ = build_workload_image(source, MemoryLayout())
        machine.kernel.load_process(image)
        checks = 0
        if predicate is not None:
            icm = machine.rse.attach(ICM())
            text = image.segment(".text")
            checker_map = build_checker_memory(machine.memory, text.base,
                                               len(text.data),
                                               predicate=predicate)
            icm.configure(checker_map)
            machine.rse.enable_module(MODULE_ICM)
            machine.pipeline.check_injector = make_icm_injector(checker_map)
        result = machine.kernel.run(max_cycles=100_000_000)
        assert result.reason == "halt", result
        doc = result.snapshot
        if predicate is not None:
            checks = doc["rse"]["modules"]["ICM"]["checks_completed"]
        results[scope] = {"cycles": doc["pipeline"]["cycles"],
                          "checks": checks}
    return results


def format_icm_coverage(results):
    base = results["none"]["cycles"]
    rows = []
    for scope in ("none", "control-flow", "loads/stores",
                  "all instructions"):
        data = results[scope]
        rows.append([scope, data["cycles"],
                     "-" if scope == "none"
                     else "%.2f%%" % overhead_pct(base, data["cycles"]),
                     data["checks"]])
    return format_table(
        ["ICM coverage", "Cycles", "Overhead", "Checks executed"],
        rows, title="Ablation: ICM coverage scope (Section 4.3 classes)")


def run_icm_footprint(site_counts=(96, 192, 320, 512, 768), sweeps=12):
    """Hit rate of the paper's 256-entry Icm_Cache vs branch footprint.

    The complementary view to :func:`run_icm_cache_sweep`: LRU over a
    straight-line sweep is all-or-nothing in cache size, so the
    interesting question is how big a static branch footprint the chosen
    256 entries can absorb.
    """
    from repro.rse.check import MODULE_ICM
    from repro.rse.modules.icm import ICM, build_checker_memory, \
        make_icm_injector

    results = {}
    for sites in site_counts:
        source = _icm_stress_source(sites, sweeps)
        machine = build_machine(with_rse=True)
        icm = machine.rse.attach(ICM(cache_entries=256))
        image, __ = build_workload_image(source, MemoryLayout())
        machine.kernel.load_process(image)
        text = image.segment(".text")
        checker_map = build_checker_memory(machine.memory, text.base,
                                           len(text.data))
        icm.configure(checker_map)
        machine.rse.enable_module(MODULE_ICM)
        machine.pipeline.check_injector = make_icm_injector(checker_map)
        result = machine.kernel.run(max_cycles=100_000_000)
        assert result.reason == "halt", result
        doc = result.snapshot
        results[sites] = {
            "cycles": doc["pipeline"]["cycles"],
            "hit_rate": doc["rse"]["modules"]["ICM"]["cache_hit_rate"],
        }
    return results


def format_icm_footprint(results):
    rows = [[sites, data["cycles"], "%.1f%%" % (100 * data["hit_rate"])]
            for sites, data in sorted(results.items())]
    return format_table(
        ["Checked branch sites", "Cycles", "Icm_Cache hit rate"],
        rows,
        title="Ablation: branch footprint vs the 256-entry Icm_Cache")


# ------------------------------------------------------- branch predictor

def run_predictor_comparison(quick=False):
    """Bimodal (the paper's sim-outorder default) vs gshare front ends.

    CHECK insertion rides the fetch stream, so front-end quality shifts
    both baseline performance and the relative cost of checking.
    Returns ``{predictor: {"cycles", "mispredicts", "accuracy"}}``.
    """
    from repro.experiments.table4 import scaled_cache_configs, \
        workload_sources
    from repro.pipeline.config import PipelineConfig

    source = workload_sources(quick)["vpr-place"]
    results = {}
    for kind in ("bimodal", "gshare"):
        machine = build_machine(
            cache_configs=scaled_cache_configs(),
            pipeline_config=PipelineConfig().copy(predictor=kind))
        image, __ = build_workload_image(source, MemoryLayout())
        machine.kernel.load_process(image)
        result = machine.kernel.run(max_cycles=100_000_000)
        assert result.reason == "halt", result
        doc = result.snapshot["pipeline"]
        results[kind] = {
            "cycles": doc["cycles"],
            "mispredicts": doc["mispredicts"],
            "accuracy": doc["predictor"]["accuracy"],
        }
    return results


def format_predictor_comparison(results):
    rows = [[kind, data["cycles"], data["mispredicts"],
             "%.1f%%" % (100 * data["accuracy"])]
            for kind, data in sorted(results.items())]
    return format_table(
        ["Predictor", "Cycles", "Mispredicts", "Direction accuracy"],
        rows, title="Ablation: branch predictor (vpr-place)")
