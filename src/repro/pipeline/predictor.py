"""Bimodal branch predictor with a branch target buffer.

The simulated processor (Figure 1) carries a conventional branch
predictor in its fetch engine.  We implement the sim-outorder default
style: a table of 2-bit saturating counters indexed by branch PC for
direction, plus a direct-mapped BTB for targets (needed by ``jr``/
``jalr``, whose targets are register values unknown at fetch).
"""


class BranchPredictor:
    """Direction (bimodal 2-bit counters) + target (BTB) prediction."""

    def __init__(self, bimodal_entries=2048, btb_entries=512):
        if bimodal_entries & (bimodal_entries - 1):
            raise ValueError("bimodal table size must be a power of two")
        if btb_entries & (btb_entries - 1):
            raise ValueError("BTB size must be a power of two")
        self._counters = [2] * bimodal_entries      # weakly taken
        self._bimodal_mask = bimodal_entries - 1
        self._btb_tags = [None] * btb_entries
        self._btb_targets = [0] * btb_entries
        self._btb_mask = btb_entries - 1
        self.lookups = 0
        self.hits = 0

    def __deepcopy__(self, memo):
        """Flat-table clone.  Predictor state is lists of ints/None (and
        scalar counters), so generic deepcopy's per-element dispatch is
        pure overhead on the machine-checkpoint path — copy the lists
        wholesale instead.  Field names are cached per class (subclasses
        like gshare add their own) and moved via getattr/setattr:
        touching ``__dict__`` would materialise it and cost the original
        and the clone CPython's inline-values attribute fast path on the
        per-prediction hot loop."""
        cls = type(self)
        names = cls.__dict__.get("_COPY_FIELDS")
        if names is None:
            names = cls._COPY_FIELDS = tuple(self.__dict__)
        clone = object.__new__(cls)
        memo[id(self)] = clone
        for name in names:
            value = getattr(self, name)
            setattr(clone, name,
                    list(value) if isinstance(value, list) else value)
        return clone

    # --------------------------------------------------------------- predict

    def predict_direction(self, pc):
        """Predict taken/not-taken for the conditional branch at *pc*."""
        self.lookups += 1
        return self._counters[(pc >> 2) & self._bimodal_mask] >= 2

    def predict_target(self, pc):
        """BTB lookup: predicted target address or None on a BTB miss."""
        index = (pc >> 2) & self._btb_mask
        if self._btb_tags[index] == pc:
            return self._btb_targets[index]
        return None

    # ---------------------------------------------------------------- update

    def update(self, pc, taken, target):
        """Train the predictor with the resolved outcome of the branch at *pc*."""
        index = (pc >> 2) & self._bimodal_mask
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
        if taken:
            btb_index = (pc >> 2) & self._btb_mask
            self._btb_tags[btb_index] = pc
            self._btb_targets[btb_index] = target

    def record_hit(self, correct):
        """Book-keeping for prediction accuracy statistics."""
        if correct:
            self.hits += 1

    @property
    def accuracy(self):
        return self.hits / self.lookups if self.lookups else 0.0


class GsharePredictor(BranchPredictor):
    """Gshare: PC xor global-history indexed 2-bit counters.

    Not part of the paper's configuration (sim-outorder's default is the
    bimodal predictor modelled above) — provided for the predictor
    ablation, since CHECK-bandwidth effects interact with front-end
    quality.
    """

    def __init__(self, bimodal_entries=2048, btb_entries=512,
                 history_bits=10):
        super().__init__(bimodal_entries, btb_entries)
        self.history_bits = history_bits
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc):
        return ((pc >> 2) ^ self._history) & self._bimodal_mask

    def predict_direction(self, pc):
        self.lookups += 1
        return self._counters[self._index(pc)] >= 2

    def update(self, pc, taken, target):
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) \
            & self._history_mask
        if taken:
            btb_index = (pc >> 2) & self._btb_mask
            self._btb_tags[btb_index] = pc
            self._btb_targets[btb_index] = target
