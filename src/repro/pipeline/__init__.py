"""Cycle-level out-of-order superscalar pipeline (the sim-outorder analogue).

Figure 1 of the paper lists the simulated machine configuration this
package reproduces: 4-wide fetch/dispatch/issue, a 16-entry register
update unit (modelled as a 16-entry ROB), an 8-entry load/store queue,
a bimodal branch predictor with BTB, and split two-level caches.

The pipeline exposes the fan-out taps the RSE framework attaches to
(``Fetch_Out``, ``Regfile_Data``, ``Execute_Out``, ``Memory_Out``,
``Commit_Out``) and honours the Instruction Output Queue's check bits at
commit — synchronous CHECK instructions stall retirement until their
module finishes (Table 1 semantics).
"""

from repro.pipeline.config import PipelineConfig
from repro.pipeline.predictor import BranchPredictor
from repro.pipeline.core import Pipeline, PipelineEvent, EventKind, Uop

__all__ = [
    "PipelineConfig",
    "BranchPredictor",
    "Pipeline",
    "PipelineEvent",
    "EventKind",
    "Uop",
]
