"""The out-of-order core: fetch, dispatch, issue, writeback, commit.

Modelled on SimpleScalar's ``sim-outorder`` (the paper's substrate,
Section 5.1): an in-order front end feeding a 16-entry ROB/RUU, wake-up
based out-of-order issue over a fixed functional-unit mix, and in-order
commit.  One call to :meth:`Pipeline.step` simulates one machine cycle.

RSE attachment points (Figure 1 of the paper):

* ``Fetch_Out``     — :meth:`RSE.on_dispatch` as instructions enter the ROB
  (the paper allocates the RSE entry "simultaneously with the instruction
  being dispatched");
* ``Regfile_Data``  — operand values at issue (:meth:`RSE.on_operands`);
* ``Execute_Out``   — ALU results / effective addresses at writeback;
* ``Memory_Out``    — load values at writeback;
* ``Commit_Out``    — committed and squashed instructions.

CHECK instructions travel the pipeline as NOPs except at commit, where
the IOQ's ``check``/``checkValid`` bits gate retirement (Table 1): the
pipeline stalls on '00', commits on '10', and flushes on '11'.

CHECK *insertion* follows the paper's methodology exactly: "CHECK
instructions are embedded at runtime, not at compile time.  When an
instruction is fetched, the simulator determines whether the instruction
has to be checked and, if so, inserts a CHECK instruction before it into
the instruction stream."  Inserted CHECKs therefore consume fetch,
dispatch, ROB and commit bandwidth but do **not** touch the I-cache —
the cache-side cost is measured by the separate NOP-rewriting experiment
(Section 5.1, "Cache overhead simulation").
"""

import enum

from repro.isa import predecode, semantics
from repro.isa.encoding import DecodeError, decode
from repro.isa.instructions import InstrClass
from repro.memory.mainmem import PAGE_SHIFT, MemoryFault
from repro.pipeline.config import PipelineConfig
from repro.pipeline.predictor import BranchPredictor, GsharePredictor

MASK32 = 0xFFFFFFFF

# Uop states.
S_WAIT = 0          # in ROB, waiting for operands / issue
S_EXEC = 1          # issued, completing at done_cycle
S_DONE = 2          # result available, awaiting commit


class EventKind(enum.Enum):
    HALT = "halt"
    SYSCALL = "syscall"
    FAULT = "fault"
    TIMER = "timer"
    CHECK_ERROR = "check_error"
    MAX_CYCLES = "max_cycles"


def _fault_marker(word=0):
    """A poison pseudo-instruction for fetch-path faults."""
    from repro.isa.instructions import Instr

    return Instr(word, "fault", InstrClass.NOP, "FAULT")


_FAULT_MARKER = _fault_marker()


class PipelineEvent:
    """Why :meth:`Pipeline.run` stopped."""

    __slots__ = ("kind", "pc", "cause", "uop")

    def __init__(self, kind, pc=0, cause=None, uop=None):
        self.kind = kind
        self.pc = pc
        self.cause = cause
        self.uop = uop

    def __repr__(self):
        return "PipelineEvent(%s, pc=0x%08x, cause=%r)" % (
            self.kind.value, self.pc, self.cause)


class Uop:
    """One in-flight instruction (ROB entry)."""

    __slots__ = (
        "seq", "pc", "instr", "state", "injected",
        "pred_next", "actual_next",
        "wait_a", "wait_b", "val_a", "val_b",
        "value", "eff_addr", "mem_size", "store_value",
        "done_cycle", "fault", "forwarded",
    )

    def __init__(self, seq, pc, instr, injected=False):
        self.seq = seq
        self.pc = pc
        self.instr = instr
        self.state = S_WAIT
        self.injected = injected
        self.pred_next = (pc + 4) & MASK32
        self.actual_next = None
        self.wait_a = None          # producer uop for first source, if pending
        self.wait_b = None
        self.val_a = 0
        self.val_b = 0
        self.value = None
        self.eff_addr = None
        self.mem_size = 0
        self.store_value = 0
        self.done_cycle = 0
        self.fault = None           # (pc, cause) when this uop faults
        self.forwarded = False      # load satisfied by store forwarding

    def __repr__(self):
        return "<Uop #%d pc=0x%08x %s state=%d>" % (
            self.seq, self.pc, self.instr.name, self.state)


class PipelineStats:
    """Counters reported by the benchmark harnesses."""

    FIELDS = ("cycles", "instret", "committed_checks", "committed_nops",
              "branches", "mispredicts", "loads", "stores", "load_forwards",
              "check_wait_cycles", "fetch_stall_cycles", "savepage_stalls",
              "squashed")

    def __init__(self):
        for name in self.FIELDS:
            setattr(self, name, 0)

    def __deepcopy__(self, memo):
        # Counters are ints; walking FIELDS with getattr/setattr keeps
        # the original's (and clone's) inline-values attribute fast path
        # intact — these counters are bumped every simulated cycle.
        clone = object.__new__(type(self))
        memo[id(self)] = clone
        for name in self.FIELDS:
            setattr(clone, name, getattr(self, name))
        return clone

    def snapshot(self):
        doc = {name: getattr(self, name) for name in self.FIELDS}
        doc["ipc"] = self.ipc
        return doc

    def reset(self):
        for name in self.FIELDS:
            setattr(self, name, 0)

    @property
    def ipc(self):
        return self.instret / self.cycles if self.cycles else 0.0


class Pipeline:
    """The out-of-order core.

    Parameters:
        memory: :class:`~repro.memory.mainmem.MainMemory` (shared with
            the kernel and RSE).
        hierarchy: :class:`~repro.memory.hierarchy.MemoryHierarchy`.
        config: :class:`~repro.pipeline.config.PipelineConfig`.
        rse: optional RSE engine implementing the attachment interface
            (see :mod:`repro.rse.engine`); None runs a bare machine.

    Hooks (set after construction when needed):

    * ``check_injector(pc, instr) -> Instr | None`` — runtime CHECK
      insertion policy (Section 5.1).
    * ``mem_check(addr, size, kind) -> str | None`` — page-permission
      probe installed by the kernel; returns a fault cause or None.
    """

    def __init__(self, memory, hierarchy, config=None, rse=None):
        self.memory = memory
        self.hierarchy = hierarchy
        self.config = config or PipelineConfig()
        self.rse = rse
        predictor_cls = (GsharePredictor
                         if self.config.predictor == "gshare"
                         else BranchPredictor)
        self.predictor = predictor_cls(self.config.bimodal_entries,
                                       self.config.btb_entries)
        self.regs = [0] * 32
        self.stats = PipelineStats()

        self.cycle = 0
        self.fetch_pc = 0
        self.fetch_enabled = False
        self.rob = []
        self.fetch_buffer = []
        self.rename = {}
        self._lsq_used = 0
        self._seq = 0
        self._pending_fetch = None      # (pc, ready_cycle): I-cache miss
        self._held = None               # (pc, instr): decoded, awaiting slot
        self._injected_for_held = False
        self.timer_deadline = None
        self._pending_timer = False
        self.freeze_until = 0           # global stall (e.g. SavePage handler)

        self.check_injector = None
        self.mem_check = None
        #: Shared predecode cache (same object the functional simulator
        #: uses when it executes from this memory); None decodes direct.
        self._predecode = (predecode.cache_for(memory)
                           if self.config.predecode else None)

    # ------------------------------------------------------------------ API

    def snapshot(self):
        """The pipeline's section of the machine snapshot document."""
        doc = self.stats.snapshot()
        doc["predictor"] = {
            "lookups": self.predictor.lookups,
            "hits": self.predictor.hits,
            "accuracy": self.predictor.accuracy,
        }
        return doc

    def reset_stats(self):
        """Zero every counter without disturbing architectural state."""
        self.stats.reset()
        self.predictor.lookups = 0
        self.predictor.hits = 0

    def reset_at(self, pc, regs=None):
        """Hard-reset the core to start executing at *pc*."""
        self.flush_all()
        if regs is not None:
            self.regs = list(regs)
        self.fetch_pc = pc & MASK32
        self.fetch_enabled = True
        self._pending_timer = False

    def resume(self, pc):
        """Resume fetch at *pc* after an event (kernel returned control)."""
        if self.rob or self.fetch_buffer:
            raise RuntimeError("resume with in-flight instructions")
        self.fetch_pc = pc & MASK32
        self.fetch_enabled = True
        self._pending_fetch = None
        self._held = None
        self._pending_timer = False

    def advance_cycles(self, count):
        """Charge *count* opaque cycles (kernel handler time)."""
        self.cycle += count
        self.stats.cycles += count

    def run(self, max_cycles=None):
        """Simulate until an event occurs; returns the :class:`PipelineEvent`.

        With ``config.batch`` on (and no per-cycle observer shadowing
        :meth:`step`), runs of provably-dead stall cycles — everything
        in flight waiting on a future ``done_cycle``, a pending I-fetch,
        a freeze window or the timer — are skipped in one jump with
        exact cycle/stat bookkeeping.  Any shadowed ``step`` (obs
        probes, :mod:`repro.assertions`, tests poking per-cycle) deopts
        to the one-``step()``-per-cycle loop so no observer misses a
        cycle.
        """
        limit = None if max_cycles is None else self.cycle + max_cycles
        if (self.config.batch
                and getattr(self.step, "__func__", None) is Pipeline.step):
            return self._run_batched(limit)
        while True:
            event = self.step()
            if event is not None:
                return event
            if limit is not None and self.cycle >= limit:
                return PipelineEvent(EventKind.MAX_CYCLES, pc=self.fetch_pc)

    def _run_batched(self, limit):
        """The batch fast-path behind :meth:`run` (exact-equivalent).

        Two levers, both cycle-exact:

        * While the machine is in its common state — no RSE attached, no
          timer pending, outside any freeze window — :meth:`_run_fast`
          runs a fused copy of the cycle loop with the per-cycle
          re-polling of those conditions hoisted out.
        * Otherwise this reference loop steps normally but jumps over
          provably-dead stall cycles (everything in flight waiting on a
          future ``done_cycle``, a pending I-fetch, a freeze window or
          the timer) in one bookkeeping-exact skip, gated on
          :meth:`RSE.quiescent` when an RSE is attached.
        """
        stats = self.stats
        while True:
            rse = self.rse
            if (rse is None and not self._pending_timer
                    and self.cycle >= self.freeze_until):
                stop = limit
                deadline = self.timer_deadline
                if deadline is not None and (stop is None or deadline < stop):
                    stop = deadline
                event = self._run_fast(stop)
                if event is not None:
                    return event
                if limit is not None and self.cycle >= limit:
                    return PipelineEvent(EventKind.MAX_CYCLES,
                                         pc=self.fetch_pc)
                # Stopped at the timer deadline: reference steps fire it.
            event, active = self._step_active()
            if event is not None:
                return event
            if limit is not None and self.cycle >= limit:
                return PipelineEvent(EventKind.MAX_CYCLES, pc=self.fetch_pc)
            if active:
                continue
            if rse is not None:
                # rse-like taps (assertion adapters, recorders) may not
                # implement quiescent(); treat them as never quiescent
                # so no per-cycle observation is ever skipped.
                quiescent = getattr(rse, "quiescent", None)
                if quiescent is None or not quiescent():
                    continue
            # Dead cycle: no in-flight state changed and (with the RSE
            # idle) none can until one of the horizons below arrives.
            # Every intermediate step() would only repeat the same
            # no-op, so jump straight to the earliest horizon and
            # replay the skipped cycles' bookkeeping.
            cycle = self.cycle
            horizons = []
            if limit is not None:
                horizons.append(limit)
            if cycle < self.freeze_until:
                horizons.append(self.freeze_until)
            else:
                for uop in self.rob:
                    if uop.state == S_EXEC:
                        horizons.append(uop.done_cycle)
                if self._pending_fetch is not None:
                    horizons.append(self._pending_fetch[1])
                if (self.timer_deadline is not None
                        and not self._pending_timer):
                    horizons.append(self.timer_deadline)
            if not horizons:
                continue          # nothing to wait for: step like legacy
            skip = min(horizons) - cycle
            if skip <= 0:
                continue
            if (cycle >= self.freeze_until and self.fetch_enabled
                    and self._pending_fetch is not None
                    and self._held is None
                    and (len(self.fetch_buffer)
                         < self.config.fetch_buffer_entries)):
                # Each skipped cycle would have retried the pending
                # I-fetch and counted one stall, exactly as step() does.
                stats.fetch_stall_cycles += skip
            self.cycle = cycle + skip
            stats.cycles += skip
            if rse is not None:
                # The skipped cycles' rse.step() calls were pure cycle
                # stamps (quiescent above); replay the last one.
                rse.step(self.cycle - 1)

    def _run_fast(self, stop):
        """Fused cycle loop: the hot path behind :meth:`_run_batched`.

        Preconditions (the caller checks them): no RSE, no pending
        timer, outside any freeze window, and *stop* at or before the
        timer deadline — under those, every per-cycle branch of
        :meth:`_step_active` that consults them is statically dead, so
        the five phase bodies are fused here with their helpers inlined
        and hot attributes cached in locals.  A same-block I-fetch memo
        short-circuits the cache model for straight-line runs (the
        block is MRU with identical hit/latency/stats outcomes either
        way), and dead stall cycles are skipped in one jump exactly as
        in the reference loop.  Returns an event, or None once
        ``self.cycle`` reaches *stop*.

        This duplicates :meth:`step`'s semantics by design; the
        reference implementation stays canonical and
        ``tests/pipeline/test_batch.py`` holds the two cycle-exact.
        """
        stats = self.stats
        config = self.config
        regs = self.regs
        rename = self.rename
        predictor = self.predictor
        hierarchy = self.hierarchy
        ifetch = hierarchy.ifetch
        il1_stats = hierarchy.il1.stats
        iblock_shift = hierarchy.il1._block_shift
        memo_ok = hierarchy.l1_latency == 1
        last_iblock = -1
        cache = self._predecode
        centries_get = cache.entries.get if cache is not None else None
        memory = self.memory
        vget = memory.write_versions.get
        dstore = hierarchy.dstore
        alu_result = semantics.alu_result
        branch_taken = semantics.branch_taken
        branch_target = semantics.branch_target
        jump_target = semantics.jump_target
        store_to = semantics.store_to
        ArithmeticFault = semantics.ArithmeticFault
        ALU = InstrClass.ALU
        MDU = InstrClass.MDU
        LOAD = InstrClass.LOAD
        STORE = InstrClass.STORE
        BRANCH = InstrClass.BRANCH
        JUMP = InstrClass.JUMP
        CHECK = InstrClass.CHECK
        NOP = InstrClass.NOP
        SYSCALL = InstrClass.SYSCALL
        HALT_CLS = InstrClass.HALT
        EK_FAULT = EventKind.FAULT
        EK_SYSCALL = EventKind.SYSCALL
        EK_HALT = EventKind.HALT
        fetch_width = config.fetch_width
        buffer_entries = config.fetch_buffer_entries
        dispatch_width = config.dispatch_width
        issue_width = config.issue_width
        commit_width = config.commit_width
        rob_entries = config.rob_entries
        lsq_entries = config.lsq_entries
        int_alus = config.int_alus
        mdus = config.mdus
        mem_ports = config.mem_ports
        alu_latency = config.alu_latency
        mul_latency = config.mul_latency
        div_latency = config.div_latency
        cycle = self.cycle
        start = cycle
        try:
            while True:
                if stop is not None and cycle >= stop:
                    return None
                active = False
                event = None
                rob = self.rob
                if rob:
                    # ---- writeback (fused, rse-free) --------------------
                    index = 0
                    for uop in rob:
                        if uop.state == S_EXEC and uop.done_cycle <= cycle:
                            active = True
                            uop.state = S_DONE
                            nxt = uop.actual_next
                            if nxt is not None:
                                instr = uop.instr
                                taken = nxt != ((uop.pc + 4) & MASK32)
                                if instr.iclass is BRANCH:
                                    predictor.update(uop.pc, taken, nxt)
                                elif instr.name in ("jr", "jalr"):
                                    predictor.update(uop.pc, True, nxt)
                                correct = nxt == uop.pred_next
                                predictor.record_hit(correct)
                                if not correct:
                                    stats.mispredicts += 1
                                    self._flush_younger(index)
                                    self.fetch_pc = nxt
                                    self.fetch_enabled = True
                                    break
                        index += 1
                    # ---- commit (fused _commit, rse-free) ---------------
                    committed = 0
                    while rob and committed < commit_width:
                        uop = rob[0]
                        if uop.state != S_DONE:
                            break
                        instr = uop.instr
                        if uop.fault is not None:
                            pc, cause = uop.fault
                            self.flush_all()
                            self.fetch_enabled = False
                            event = PipelineEvent(EK_FAULT, pc=pc,
                                                  cause=cause, uop=uop)
                            active = True
                            break
                        smc_flush = False
                        if instr.is_store:
                            store_to(memory, instr, uop.eff_addr,
                                     uop.store_value)
                            dstore(cycle, uop.eff_addr)
                            stats.stores += 1
                            smc_flush = self._smc_hazard(
                                uop.eff_addr >> PAGE_SHIFT)
                        dest = instr.dest
                        if dest:
                            if uop.value is not None:
                                regs[dest] = uop.value
                            if rename.get(dest) is uop:
                                del rename[dest]
                        del rob[0]
                        if instr.is_mem:
                            self._lsq_used -= 1
                        committed += 1
                        iclass = instr.iclass
                        if instr.is_check:
                            stats.committed_checks += 1
                            if not uop.injected:
                                stats.instret += 1
                        elif iclass is NOP:
                            stats.committed_nops += 1
                            stats.instret += 1
                        else:
                            stats.instret += 1
                        if instr.is_load:
                            stats.loads += 1
                        if instr.is_control:
                            stats.branches += 1
                        if smc_flush:
                            # Store rewrote a page younger in-flight
                            # instructions were decoded from; squash and
                            # refetch, as the reference commit does.
                            self.flush_all()
                            self.fetch_pc = (uop.pc + 4) & MASK32
                            self.fetch_enabled = True
                            break
                        if iclass is SYSCALL:
                            event = PipelineEvent(EK_SYSCALL, pc=uop.pc,
                                                  uop=uop)
                            break
                        if iclass is HALT_CLS:
                            event = PipelineEvent(EK_HALT, pc=uop.pc,
                                                  uop=uop)
                            break
                    if committed:
                        active = True
                if event is not None:
                    cycle += 1
                    return event
                rob_nonempty = bool(rob)
                rob = self.rob          # commit may have swapped the list
                fetch_buffer = self.fetch_buffer
                # ---- issue (fused _issue/_operands_ready/_issue_alu) ----
                if rob_nonempty:
                    budget = issue_width
                    alu_free = int_alus
                    mdu_free = mdus
                    mem_free = mem_ports
                    index = -1
                    for uop in rob:
                        index += 1
                        if budget == 0:
                            break
                        if uop.state:          # != S_WAIT
                            continue
                        producer = uop.wait_a
                        if producer is not None:
                            if producer.state == S_DONE:
                                value = producer.value
                                uop.val_a = 0 if value is None else value
                                uop.wait_a = None
                            else:
                                continue
                        producer = uop.wait_b
                        if producer is not None:
                            if producer.state == S_DONE:
                                value = producer.value
                                uop.val_b = 0 if value is None else value
                                uop.wait_b = None
                            else:
                                continue
                        instr = uop.instr
                        iclass = instr.iclass
                        if iclass is LOAD:
                            if (mem_free == 0 or
                                    not self._try_issue_load(uop, index,
                                                             cycle)):
                                continue
                            mem_free -= 1
                        elif iclass is STORE:
                            if mem_free == 0:
                                continue
                            self._issue_store(uop, cycle)
                            mem_free -= 1
                        else:          # ALU / MDU / branch / jump / CHECK
                            if iclass is MDU:
                                if mdu_free == 0:
                                    continue
                                mdu_free -= 1
                            else:
                                if alu_free == 0:
                                    continue
                                alu_free -= 1
                            uop.state = S_EXEC
                            uop.done_cycle = cycle + alu_latency
                            if iclass is not CHECK:
                                rs_val = rt_val = 0
                                srcs = instr.srcs
                                if srcs:
                                    reg = srcs[0]
                                    if reg == instr.rs:
                                        rs_val = uop.val_a
                                    if reg == instr.rt:
                                        rt_val = uop.val_a
                                    if len(srcs) > 1:
                                        reg = srcs[1]
                                        if reg == instr.rs:
                                            rs_val = uop.val_b
                                        if reg == instr.rt:
                                            rt_val = uop.val_b
                                try:
                                    if iclass is ALU:
                                        uop.value = alu_result(instr, rs_val,
                                                               rt_val)
                                    elif iclass is MDU:
                                        uop.done_cycle = cycle + (
                                            mul_latency
                                            if instr.name == "mul"
                                            else div_latency)
                                        uop.value = alu_result(instr, rs_val,
                                                               rt_val)
                                    elif iclass is BRANCH:
                                        uop.actual_next = (
                                            branch_target(instr, uop.pc)
                                            if branch_taken(instr, rs_val,
                                                            rt_val)
                                            else (uop.pc + 4) & MASK32)
                                    else:          # JUMP
                                        dest = instr.dest
                                        if dest:
                                            uop.value = (uop.pc + 4) & MASK32
                                            if dest == instr.rs:
                                                rs_val = uop.value
                                        uop.actual_next = jump_target(
                                            instr, uop.pc, rs_val)
                                except ArithmeticFault:
                                    uop.fault = (uop.pc,
                                                 "integer divide by zero")
                        budget -= 1
                    if budget != issue_width:
                        active = True
                # ---- dispatch (fused _dispatch/_rename_sources) ---------
                if fetch_buffer:
                    dbudget = dispatch_width
                    while dbudget and fetch_buffer:
                        if len(rob) >= rob_entries:
                            break
                        uop = fetch_buffer[0]
                        instr = uop.instr
                        serializing = instr.serializing
                        if serializing and rob:
                            break
                        is_mem = instr.is_mem
                        if is_mem and self._lsq_used >= lsq_entries:
                            break
                        del fetch_buffer[0]
                        srcs = instr.srcs
                        if srcs:
                            reg = srcs[0]
                            producer = rename.get(reg)
                            if producer is None:
                                uop.val_a = regs[reg]
                            elif (producer.state == S_DONE
                                    and producer.value is not None):
                                uop.val_a = producer.value
                            else:
                                uop.wait_a = producer
                            if len(srcs) > 1:
                                reg = srcs[1]
                                producer = rename.get(reg)
                                if producer is None:
                                    uop.val_b = regs[reg]
                                elif (producer.state == S_DONE
                                        and producer.value is not None):
                                    uop.val_b = producer.value
                                else:
                                    uop.wait_b = producer
                        dest = instr.dest
                        if dest:
                            rename[dest] = uop
                        rob.append(uop)
                        if is_mem:
                            self._lsq_used += 1
                        if (serializing or instr.iclass is NOP
                                or instr.fmt == "FAULT"):
                            uop.state = S_DONE
                        dbudget -= 1
                        active = True
                        if serializing:
                            break
                # ---- fetch (fused _fetch/_next_fetch/_decode_at) --------
                if self.fetch_enabled:
                    check_injector = self.check_injector
                    mem_check = self.mem_check
                    fbudget = fetch_width
                    while fbudget and len(fetch_buffer) < buffer_entries:
                        pc = self.fetch_pc
                        if (self._held is not None
                                or self._pending_fetch is not None
                                or pc & 3):
                            triple = self._next_fetch(cycle)
                            if triple is None:
                                break
                            pc, instr, fault_cause = triple
                        else:
                            fault_cause = (None if mem_check is None
                                           else mem_check(pc, 4, "x"))
                            if fault_cause is not None:
                                instr = _FAULT_MARKER
                            else:
                                block = pc >> iblock_shift
                                if memo_ok and block == last_iblock:
                                    # Same block as the immediately
                                    # preceding I-fetch: guaranteed L1
                                    # hit, already MRU — bump the same
                                    # counters and skip the model.
                                    il1_stats.accesses += 1
                                    il1_stats.hits += 1
                                else:
                                    done = ifetch(cycle, pc)
                                    if done > cycle + 1:
                                        self._pending_fetch = (pc, done)
                                        stats.fetch_stall_cycles += 1
                                        break
                                    last_iblock = block
                                entry = (centries_get(pc)
                                         if centries_get is not None
                                         else None)
                                if (entry is not None
                                        and vget(pc >> PAGE_SHIFT, 0)
                                        == entry[0]):
                                    instr = entry[3]
                                else:
                                    __, instr, fault_cause = \
                                        self._decode_at(pc)
                        if (check_injector is not None
                                and not self._injected_for_held
                                and (fault_cause is not None
                                     or not instr.is_check)):
                            check = check_injector(pc, instr)
                            if check is not None:
                                self._held = (pc, instr, fault_cause)
                                self._injected_for_held = True
                                uop = Uop(self._seq, pc, check,
                                          injected=True)
                                self._seq += 1
                                uop.pred_next = pc
                                fetch_buffer.append(uop)
                                fbudget -= 1
                                active = True
                                continue
                        self._held = None
                        self._injected_for_held = False
                        uop = Uop(self._seq, pc, instr)
                        self._seq += 1
                        if fault_cause is not None:
                            uop.fault = (pc, fault_cause)
                            uop.state = S_DONE
                            fetch_buffer.append(uop)
                            self.fetch_enabled = False
                            active = True
                            break
                        iclass = instr.iclass
                        if iclass is BRANCH:
                            pred = (branch_target(instr, pc)
                                    if predictor.predict_direction(pc)
                                    else (pc + 4) & MASK32)
                        elif iclass is JUMP:
                            if instr.name in ("j", "jal"):
                                pred = jump_target(instr, pc)
                            else:
                                target = predictor.predict_target(pc)
                                predictor.lookups += 1
                                pred = (target if target is not None
                                        else (pc + 4) & MASK32)
                        else:
                            pred = (pc + 4) & MASK32
                        uop.pred_next = pred
                        fetch_buffer.append(uop)
                        self.fetch_pc = pred
                        fbudget -= 1
                        active = True
                        if instr.serializing:
                            self.fetch_enabled = False
                            break
                cycle += 1
                if active:
                    continue
                # ---- dead cycle: jump to the next horizon ---------------
                horizon = stop
                for uop in rob:
                    if uop.state == S_EXEC:
                        done = uop.done_cycle
                        if horizon is None or done < horizon:
                            horizon = done
                pending = self._pending_fetch
                if pending is not None:
                    ready = pending[1]
                    if horizon is None or ready < horizon:
                        horizon = ready
                if horizon is None:
                    continue          # nothing to wait for: keep stepping
                skip = horizon - cycle
                if skip <= 0:
                    continue
                if (self.fetch_enabled and pending is not None
                        and self._held is None
                        and len(fetch_buffer) < buffer_entries):
                    # Each skipped cycle would have retried the pending
                    # I-fetch and counted one stall, as step() does.
                    stats.fetch_stall_cycles += skip
                cycle += skip
        finally:
            stats.cycles += cycle - start
            self.cycle = cycle

    # ----------------------------------------------------------------- cycle

    def step(self):
        """Advance one machine cycle; returns an event or None."""
        return self._step_active()[0]

    def _step_active(self):
        """One cycle; returns ``(event, active)`` where *active* reports
        whether any in-flight state changed (the batch fast-path skips
        ahead only after quiet cycles)."""
        cycle = self.cycle
        event = None
        active = False
        if cycle >= self.freeze_until:
            if (self.timer_deadline is not None and not self._pending_timer
                    and cycle >= self.timer_deadline):
                self._pending_timer = True
                self.fetch_enabled = False
                active = True
            rob = self.rob
            if rob:
                if self._writeback(cycle):
                    active = True
                before = len(self.rob)
                event = self._commit(cycle)
                if event is not None or len(self.rob) != before:
                    active = True
            if event is None:
                if rob and self._issue(cycle):
                    active = True
                if self.fetch_buffer and self._dispatch(cycle):
                    active = True
                if self.fetch_enabled and self._fetch(cycle):
                    active = True
                if (self._pending_timer and not self.rob
                        and not self.fetch_buffer):
                    event = PipelineEvent(EventKind.TIMER, pc=self.fetch_pc)
        if self.rse is not None:
            self.rse.step(cycle)
        self.cycle = cycle + 1
        self.stats.cycles += 1
        return event, active

    # ------------------------------------------------------------- writeback

    def _writeback(self, cycle):
        completed = False
        for index, uop in enumerate(self.rob):
            if uop.state != S_EXEC or uop.done_cycle > cycle:
                continue
            completed = True
            uop.state = S_DONE
            instr = uop.instr
            rse = self.rse
            if rse is not None:
                rse.on_execute(uop, cycle)
                if instr.is_load and uop.fault is None:
                    rse.on_mem_load(uop, cycle, uop.value)
            if uop.actual_next is not None:
                taken = uop.actual_next != ((uop.pc + 4) & MASK32)
                if instr.iclass is InstrClass.BRANCH:
                    self.predictor.update(uop.pc, taken, uop.actual_next)
                elif instr.name in ("jr", "jalr"):
                    self.predictor.update(uop.pc, True, uop.actual_next)
                correct = uop.actual_next == uop.pred_next
                self.predictor.record_hit(correct)
                if not correct:
                    self.stats.mispredicts += 1
                    self._flush_younger(index)
                    self.fetch_pc = uop.actual_next
                    self.fetch_enabled = not self._pending_timer
                    return True
        return completed

    # ---------------------------------------------------------------- commit

    def _commit(self, cycle):
        committed = 0
        stats = self.stats
        rse = self.rse
        while self.rob and committed < self.config.commit_width:
            uop = self.rob[0]
            if uop.state != S_DONE:
                break
            instr = uop.instr
            if instr.is_check and rse is not None:
                gate = rse.ioq_gate(uop, cycle)
                if gate == "wait":
                    stats.check_wait_cycles += 1
                    break
                if gate == "error":
                    module = instr.module
                    pc = uop.pc
                    self.flush_all()
                    self.fetch_enabled = False
                    return PipelineEvent(EventKind.CHECK_ERROR, pc=pc,
                                         cause="module %d" % module, uop=uop)
            if uop.fault is not None:
                pc, cause = uop.fault
                self.flush_all()
                self.fetch_enabled = False
                return PipelineEvent(EventKind.FAULT, pc=pc, cause=cause,
                                     uop=uop)
            # --- retire -----------------------------------------------------
            smc_flush = False
            if instr.is_store:
                if rse is not None:
                    stall = rse.pre_commit_store(uop, cycle)
                    if stall:
                        self.freeze_until = cycle + stall
                        stats.savepage_stalls += 1
                semantics.store_to(self.memory, instr, uop.eff_addr,
                                   uop.store_value)
                self.hierarchy.dstore(cycle, uop.eff_addr)
                stats.stores += 1
                smc_flush = self._smc_hazard(uop.eff_addr >> PAGE_SHIFT)
            dest = instr.dest
            if dest and uop.value is not None:
                self.regs[dest] = uop.value
            if dest and self.rename.get(dest) is uop:
                del self.rename[dest]
            self.rob.pop(0)
            if instr.is_mem:
                self._lsq_used -= 1
            committed += 1
            if instr.is_check:
                if uop.injected:
                    stats.committed_checks += 1
                else:
                    stats.committed_checks += 1
                    stats.instret += 1
            elif instr.iclass is InstrClass.NOP:
                stats.committed_nops += 1
                stats.instret += 1
            else:
                stats.instret += 1
            if instr.is_load:
                stats.loads += 1
            if instr.is_control:
                stats.branches += 1
            if rse is not None:
                rse.on_commit(uop, cycle)
            if smc_flush:
                # The store rewrote a page that younger in-flight
                # instructions were decoded from (self-modifying code
                # landing inside the fetch window).  Squash them and
                # refetch so execution re-decodes what memory now holds,
                # exactly like the in-order reference interpreter.
                self.flush_all()
                self.fetch_pc = (uop.pc + 4) & MASK32
                self.fetch_enabled = not self._pending_timer
                return None
            if instr.iclass is InstrClass.SYSCALL:
                return PipelineEvent(EventKind.SYSCALL, pc=uop.pc, uop=uop)
            if instr.iclass is InstrClass.HALT:
                return PipelineEvent(EventKind.HALT, pc=uop.pc, uop=uop)
            if self.freeze_until > cycle:
                break          # SavePage handler suspended the process
        return None

    # ----------------------------------------------------------------- issue

    def _issue(self, cycle):
        config = self.config
        budget = config.issue_width
        alu_free = config.int_alus
        mdu_free = config.mdus
        mem_free = config.mem_ports
        for index, uop in enumerate(self.rob):
            if budget == 0:
                break
            if uop.state != S_WAIT:
                continue
            if not self._operands_ready(uop):
                continue
            instr = uop.instr
            iclass = instr.iclass
            if iclass is InstrClass.LOAD:
                if mem_free == 0:
                    continue
                if not self._try_issue_load(uop, index, cycle):
                    continue
                mem_free -= 1
            elif iclass is InstrClass.STORE:
                if mem_free == 0:
                    continue
                self._issue_store(uop, cycle)
                mem_free -= 1
            elif iclass is InstrClass.MDU:
                if mdu_free == 0:
                    continue
                self._issue_alu(uop, cycle)
                mdu_free -= 1
            else:          # ALU, branch, jump, CHECK
                if alu_free == 0:
                    continue
                self._issue_alu(uop, cycle)
                alu_free -= 1
            budget -= 1
        return config.issue_width - budget

    def _operands_ready(self, uop):
        producer = uop.wait_a
        if producer is not None:
            if producer.state != S_DONE or producer.value is None:
                if producer.state == S_DONE and producer.value is None:
                    # Producer faulted; operand value is undefined but the
                    # fault will retire first, squashing this uop.
                    uop.val_a = 0
                    uop.wait_a = None
                else:
                    return False
            else:
                uop.val_a = producer.value
                uop.wait_a = None
        producer = uop.wait_b
        if producer is not None:
            if producer.state != S_DONE or producer.value is None:
                if producer.state == S_DONE and producer.value is None:
                    uop.val_b = 0
                    uop.wait_b = None
                else:
                    return False
            else:
                uop.val_b = producer.value
                uop.wait_b = None
        return True

    def _rs_rt_values(self, uop):
        instr = uop.instr
        rs_val = rt_val = 0
        srcs = instr.srcs
        if srcs:
            reg = srcs[0]
            if reg == instr.rs:
                rs_val = uop.val_a
            if reg == instr.rt:
                rt_val = uop.val_a
            if len(srcs) > 1:
                reg = srcs[1]
                if reg == instr.rs:
                    rs_val = uop.val_b
                if reg == instr.rt:
                    rt_val = uop.val_b
        return rs_val, rt_val

    def _issue_alu(self, uop, cycle):
        instr = uop.instr
        iclass = instr.iclass
        config = self.config
        uop.state = S_EXEC
        uop.done_cycle = cycle + config.alu_latency
        if iclass is InstrClass.CHECK:
            if self.rse is not None:
                self.rse.on_operands(uop, cycle, (uop.val_a, uop.val_b))
            return
        rs_val, rt_val = self._rs_rt_values(uop)
        try:
            if iclass is InstrClass.MDU:
                latency = (config.mul_latency if instr.name == "mul"
                           else config.div_latency)
                uop.done_cycle = cycle + latency
                uop.value = semantics.alu_result(instr, rs_val, rt_val)
            elif iclass is InstrClass.ALU:
                uop.value = semantics.alu_result(instr, rs_val, rt_val)
            elif iclass is InstrClass.BRANCH:
                taken = semantics.branch_taken(instr, rs_val, rt_val)
                uop.actual_next = (semantics.branch_target(instr, uop.pc)
                                   if taken else (uop.pc + 4) & MASK32)
            elif iclass is InstrClass.JUMP:
                if instr.dest:          # jal / jalr: link register
                    uop.value = (uop.pc + 4) & MASK32
                # jalr writes the link before reading the target register
                # (the reference-interpreter order, visible when rd == rs).
                if instr.dest and instr.dest == instr.rs:
                    rs_val = uop.value
                uop.actual_next = semantics.jump_target(instr, uop.pc, rs_val)
                # An unaligned target redirects normally; the fetch unit
                # faults at the target pc, exactly like the interpreter.
        except semantics.ArithmeticFault:
            uop.fault = (uop.pc, "integer divide by zero")
        if self.rse is not None and not instr.is_check:
            self.rse.on_operands(uop, cycle, (rs_val, rt_val))

    def _issue_store(self, uop, cycle):
        instr = uop.instr
        rs_val, rt_val = self._rs_rt_values(uop)
        uop.eff_addr = semantics.effective_address(instr, rs_val)
        uop.mem_size = semantics.access_size(instr)
        uop.store_value = rt_val
        uop.state = S_EXEC
        uop.done_cycle = cycle + 1
        if (uop.mem_size > 1) and (uop.eff_addr % uop.mem_size):
            uop.fault = (uop.pc, "unaligned store at 0x%08x" % uop.eff_addr)
        elif self.mem_check is not None:
            cause = self.mem_check(uop.eff_addr, uop.mem_size, "w")
            if cause is not None:
                uop.fault = (uop.pc, cause)
        if self.rse is not None:
            self.rse.on_operands(uop, cycle, (rs_val, rt_val))

    def _try_issue_load(self, uop, index, cycle):
        instr = uop.instr
        rs_val, __ = self._rs_rt_values(uop)
        addr = semantics.effective_address(instr, rs_val)
        size = semantics.access_size(instr)
        # Memory disambiguation against older stores still in the ROB.
        forward_from = None
        rse = self.rse
        for older in self.rob[:index]:
            if (rse is not None and older.instr.is_check
                    and rse.check_blocks_loads(older.instr)):
                return False          # module output not yet in memory
            if not older.instr.is_store:
                continue
            if older.state == S_WAIT:
                return False          # unknown address: conservative stall
            if older.eff_addr is None:
                return False
            lo, hi = older.eff_addr, older.eff_addr + older.mem_size
            if lo < addr + size and addr < hi:
                if lo <= addr and addr + size <= hi:
                    # Exact containment: every loaded byte comes from this
                    # store (youngest containing store wins).
                    forward_from = older
                else:
                    return False          # partial overlap: wait for commit
        uop.eff_addr = addr
        uop.mem_size = size
        uop.state = S_EXEC
        if (size > 1) and (addr % size):
            uop.fault = (uop.pc, "unaligned load at 0x%08x" % addr)
            uop.done_cycle = cycle + 1
            return True
        if self.mem_check is not None:
            cause = self.mem_check(addr, size, "r")
            if cause is not None:
                uop.fault = (uop.pc, cause)
                uop.done_cycle = cycle + 1
                return True
        if forward_from is not None:
            # Shift the contained bytes down to the load's position (the
            # store's value is little-endian, so byte k of the stored
            # range lives at bit 8k) before width extraction.
            raw = forward_from.store_value >> (
                8 * (addr - forward_from.eff_addr))
            uop.value = self._extract_load_value(instr, raw)
            uop.forwarded = True
            uop.done_cycle = cycle + 1
            self.stats.load_forwards += 1
        else:
            try:
                uop.value = semantics.load_from(self.memory, instr, addr)
            except MemoryFault as exc:
                uop.fault = (uop.pc, str(exc))
                uop.done_cycle = cycle + 1
                return True
            uop.done_cycle = self.hierarchy.dload(cycle, addr)
        if self.rse is not None:
            self.rse.on_operands(uop, cycle, (rs_val, 0))
        return True

    @staticmethod
    def _extract_load_value(instr, raw):
        name = instr.name
        if name == "lw":
            return raw & MASK32
        if name == "lh":
            value = raw & 0xFFFF
            return (value - 0x10000 if value & 0x8000 else value) & MASK32
        if name == "lhu":
            return raw & 0xFFFF
        if name == "lb":
            value = raw & 0xFF
            return (value - 0x100 if value & 0x80 else value) & MASK32
        return raw & 0xFF          # lbu

    # -------------------------------------------------------------- dispatch

    def _dispatch(self, cycle):
        config = self.config
        width = config.dispatch_width
        budget = width
        while budget and self.fetch_buffer:
            if len(self.rob) >= config.rob_entries:
                break
            uop = self.fetch_buffer[0]
            instr = uop.instr
            if instr.serializing and self.rob:
                break          # syscalls/halt dispatch into an empty ROB
            if instr.is_mem and self._lsq_used >= config.lsq_entries:
                break
            self.fetch_buffer.pop(0)
            self._rename_sources(uop)
            self.rob.append(uop)
            if instr.is_mem:
                self._lsq_used += 1
            if (instr.serializing or instr.iclass is InstrClass.NOP
                    or instr.fmt == "FAULT"):
                uop.state = S_DONE
            if self.rse is not None:
                self.rse.on_dispatch(uop, cycle)
            budget -= 1
            if instr.serializing:
                break          # nothing younger may enter until it retires
        return width - budget

    def _rename_sources(self, uop):
        srcs = uop.instr.srcs
        rename = self.rename
        regs = self.regs
        if srcs:
            reg = srcs[0]
            producer = rename.get(reg)
            if producer is None:
                uop.val_a = regs[reg]
            elif producer.state == S_DONE and producer.value is not None:
                uop.val_a = producer.value
            else:
                uop.wait_a = producer
            if len(srcs) > 1:
                reg = srcs[1]
                producer = rename.get(reg)
                if producer is None:
                    uop.val_b = regs[reg]
                elif producer.state == S_DONE and producer.value is not None:
                    uop.val_b = producer.value
                else:
                    uop.wait_b = producer
        dest = uop.instr.dest
        if dest:
            rename[dest] = uop

    # ----------------------------------------------------------------- fetch

    def _fetch(self, cycle):
        if not self.fetch_enabled:
            return 0
        config = self.config
        budget = config.fetch_width
        fetched = 0
        while budget and len(self.fetch_buffer) < config.fetch_buffer_entries:
            triple = self._next_fetch(cycle)
            if triple is None:
                return fetched
            pc, instr, fault_cause = triple
            if (self.check_injector is not None
                    and not self._injected_for_held
                    and (fault_cause is not None or not instr.is_check)):
                check = self.check_injector(pc, instr)
                if check is not None:
                    self._held = triple
                    self._injected_for_held = True
                    uop = Uop(self._seq, pc, check, injected=True)
                    self._seq += 1
                    uop.pred_next = pc          # the checked instr follows
                    self.fetch_buffer.append(uop)
                    budget -= 1
                    fetched += 1
                    continue
            self._held = None
            self._injected_for_held = False
            uop = Uop(self._seq, pc, instr)
            self._seq += 1
            if fault_cause is not None:
                # Poisoned fetch: precise fault at commit; stop fetching.
                uop.fault = (pc, fault_cause)
                uop.state = S_DONE
                self.fetch_buffer.append(uop)
                self.fetch_enabled = False
                return fetched + 1
            uop.pred_next = self._predict(pc, instr)
            self.fetch_buffer.append(uop)
            self.fetch_pc = uop.pred_next
            budget -= 1
            fetched += 1
            if instr.serializing:
                self.fetch_enabled = False
                break
        return fetched

    def _next_fetch(self, cycle):
        """Produce ``(pc, instr, fault_cause)`` for the next instruction.

        Returns None while the fetch unit is stalled (I-cache miss).  On
        a fetch-path fault the returned instruction is a poison marker
        and *fault_cause* explains it.
        """
        if self._held is not None:
            return self._held
        if self._pending_fetch is not None:
            pc, ready = self._pending_fetch
            if cycle < ready:
                self.stats.fetch_stall_cycles += 1
                return None
            self._pending_fetch = None
            return self._decode_at(pc)
        pc = self.fetch_pc
        if pc & 3:
            return pc, _FAULT_MARKER, "unaligned fetch"
        if self.mem_check is not None:
            cause = self.mem_check(pc, 4, "x")
            if cause is not None:
                return pc, _FAULT_MARKER, cause
        done = self.hierarchy.ifetch(cycle, pc)
        if done > cycle + 1:
            self._pending_fetch = (pc, done)
            self.stats.fetch_stall_cycles += 1
            return None
        return self._decode_at(pc)

    def _decode_at(self, pc):
        cache = self._predecode
        try:
            if cache is None:
                return pc, decode(self.memory.load_word(pc)), None
            entry = cache.entries.get(pc)
            if (entry is None or
                    self.memory.write_versions.get(pc >> PAGE_SHIFT, 0)
                    != entry[0]):
                entry = cache.refill(pc)
            return pc, entry[3], None
        except DecodeError as exc:
            # Keep the raw word on the marker so the ICM's binary
            # comparison sees what was actually fetched.
            return pc, _fault_marker(exc.word), str(exc)
        except MemoryFault as exc:
            return pc, _FAULT_MARKER, str(exc)

    def _predict(self, pc, instr):
        iclass = instr.iclass
        if iclass is InstrClass.BRANCH:
            if self.predictor.predict_direction(pc):
                return semantics.branch_target(instr, pc)
            return (pc + 4) & MASK32
        if iclass is InstrClass.JUMP:
            if instr.name in ("j", "jal"):
                return semantics.jump_target(instr, pc)
            target = self.predictor.predict_target(pc)
            self.predictor.lookups += 1
            return target if target is not None else (pc + 4) & MASK32
        return (pc + 4) & MASK32

    # ----------------------------------------------------------------- flush

    def _smc_hazard(self, page):
        """Does any in-flight instruction live on text page *page*?

        Called when a store commits: instructions already fetched from
        that page were decoded from the pre-store bytes and must be
        squashed.  Instructions whose fetch is still pending decode
        later (against post-store memory) and need no flush.
        """
        for uop in self.rob:
            if uop.pc >> PAGE_SHIFT == page:
                return True
        for uop in self.fetch_buffer:
            if uop.pc >> PAGE_SHIFT == page:
                return True
        held = self._held
        return held is not None and (held[0] >> PAGE_SHIFT) == page

    def _flush_younger(self, index):
        """Squash every uop younger than ``rob[index]`` (mispredict recovery)."""
        squashed = self.rob[index + 1:]
        del self.rob[index + 1:]
        squashed.extend(self.fetch_buffer)
        self.fetch_buffer.clear()
        self._pending_fetch = None
        self._held = None
        self._injected_for_held = False
        self._lsq_used = sum(1 for u in self.rob if u.instr.is_mem)
        self.rename.clear()
        for uop in self.rob:
            dest = uop.instr.dest
            if dest:
                self.rename[dest] = uop
        self.stats.squashed += len(squashed)
        if squashed and self.rse is not None:
            self.rse.on_squash(squashed, self.cycle)

    def flush_all(self):
        """Squash the entire window (faults, CHECK errors, context switch)."""
        squashed = self.rob + self.fetch_buffer
        self.rob = []
        self.fetch_buffer = []
        self.rename.clear()
        self._lsq_used = 0
        self._pending_fetch = None
        self._held = None
        self._injected_for_held = False
        self.stats.squashed += len(squashed)
        if squashed and self.rse is not None:
            self.rse.on_squash(squashed, self.cycle)
