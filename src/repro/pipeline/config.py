"""Architectural parameters of the simulated superscalar processor.

Defaults follow Figure 1 of the paper (the DLX-like machine simulated
with an augmented sim-outorder): 4-instruction fetch/dispatch/issue
width, 16-entry RUU (ROB), 8-entry LSQ, 4-entry fetch buffer.
Functional-unit mix and latencies follow sim-outorder's defaults.
"""


class PipelineConfig:
    """Tunable machine parameters.  Instances are plain value objects."""

    def __init__(self,
                 fetch_width=4,
                 dispatch_width=4,
                 issue_width=4,
                 commit_width=4,
                 fetch_buffer_entries=4,
                 rob_entries=16,
                 lsq_entries=8,
                 int_alus=4,
                 mdus=1,
                 mem_ports=2,
                 alu_latency=1,
                 mul_latency=3,
                 div_latency=20,
                 bimodal_entries=2048,
                 btb_entries=512,
                 predictor="bimodal",
                 predecode=True,
                 batch=True):
        self.fetch_width = fetch_width
        self.dispatch_width = dispatch_width
        self.issue_width = issue_width
        self.commit_width = commit_width
        self.fetch_buffer_entries = fetch_buffer_entries
        self.rob_entries = rob_entries
        self.lsq_entries = lsq_entries
        self.int_alus = int_alus
        self.mdus = mdus
        self.mem_ports = mem_ports
        self.alu_latency = alu_latency
        self.mul_latency = mul_latency
        self.div_latency = div_latency
        self.bimodal_entries = bimodal_entries
        self.btb_entries = btb_entries
        self.predictor = predictor          # "bimodal" (paper) or "gshare"
        #: Fetch through the shared predecode cache (perf only — the
        #: decoded stream is bit-identical either way; False keeps the
        #: direct decode path for differential testing).
        self.predecode = predecode
        #: Let :meth:`Pipeline.run` skip provably-dead stall cycles in
        #: one jump (perf only — cycle counts, stats and events are
        #: identical; False forces the one-step()-per-cycle loop).
        self.batch = batch

    def copy(self, **overrides):
        """Return a new config with *overrides* applied."""
        fresh = PipelineConfig()
        for name, value in vars(self).items():
            setattr(fresh, name, value)
        for name, value in overrides.items():
            if not hasattr(fresh, name):
                raise AttributeError("unknown config field %r" % name)
            setattr(fresh, name, value)
        return fresh
