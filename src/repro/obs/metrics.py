"""Machine-wide metric primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` is the named-metric store behind
:class:`~repro.obs.hub.Observability`.  Probes feed it (IOQ occupancy,
bus MAU-wait distribution, CHECK-to-commit latency); its
:meth:`~MetricsRegistry.snapshot` folds into ``Machine.snapshot()``
under the ``obs.metrics`` section.

Design constraints, in order:

* **hot-path cheapness** — ``Counter.inc`` and ``Histogram.observe`` are
  a couple of attribute operations; no locks, no dict lookups per event
  (probes bind the metric object once, at attach time);
* **schema stability** — every metric kind snapshots to a fixed key set,
  so exported documents diff cleanly across runs.
"""

import bisect

#: Default histogram bucket upper bounds (cycles/entries).  Geometric,
#: because the interesting telemetry (bus waits, check latencies) spans
#: three orders of magnitude.
DEFAULT_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def reset(self):
        self.value = 0

    def snapshot(self):
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (last write wins); tracks its extremes."""

    __slots__ = ("name", "value", "min", "max")

    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.min = None
        self.max = None

    def set(self, value):
        self.value = value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def reset(self):
        self.value = 0
        self.min = None
        self.max = None

    def snapshot(self):
        return {"kind": "gauge", "value": self.value,
                "min": self.min, "max": self.max}


class Histogram:
    """Fixed-bucket distribution (count, sum, min, max, bucket counts).

    Buckets are cumulative-style upper bounds plus an implicit overflow
    bucket, the conventional exposition format; :meth:`observe` is a
    bisect plus two adds, cheap enough for per-event probes.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name, bounds=DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value):
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, q):
        """Approximate *q*-th percentile from the bucket boundaries."""
        if not self.count:
            return 0
        target = q / 100.0 * self.count
        seen = 0
        for index, bucket_count in enumerate(self.buckets):
            seen += bucket_count
            if seen >= target and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def reset(self):
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def snapshot(self):
        return {"kind": "histogram", "count": self.count,
                "sum": self.total, "min": self.min, "max": self.max,
                "mean": self.mean,
                "buckets": {("le_%d" % bound): self.buckets[index]
                            for index, bound in enumerate(self.bounds)},
                "overflow": self.buckets[-1]}


class MetricsRegistry:
    """Named metrics, created on first use and snapshot in name order."""

    def __init__(self):
        self._metrics = {}

    def _get(self, name, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name)
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError("metric %r already registered as %s"
                            % (name, metric.kind))
        return metric

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name, bounds=None):
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, bounds or DEFAULT_BOUNDS)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError("metric %r already registered as %s"
                            % (name, metric.kind))
        return metric

    def get(self, name):
        return self._metrics.get(name)

    def names(self):
        return sorted(self._metrics)

    def reset(self):
        for metric in self._metrics.values():
            metric.reset()

    def snapshot(self):
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    def __len__(self):
        return len(self._metrics)

    def __contains__(self, name):
        return name in self._metrics
