"""repro.obs — the machine-wide telemetry layer.

One unified stats/trace API over every simulated component:

* ``Machine.snapshot()`` — a single, schema-stable nested document
  (:data:`~repro.obs.hub.SCHEMA`) composed from per-component
  ``snapshot()`` providers registered on the machine's
  :class:`Observability` hub;
* :class:`MetricsRegistry` — counters / gauges / histograms fed by
  probes (IOQ occupancy, bus MAU-wait distribution, CHECK-to-commit
  latency, ...);
* :class:`CycleTracer` — a bounded cycle-event ring with JSONL export;
* probes (:data:`PROBES`) — opt-in instrumentation that is zero-cost
  when detached (attach-time method shadowing, no per-event guards).
"""

from repro.obs.hub import SCHEMA, Observability
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.probes import PROBES, Probe
from repro.obs.tracer import (
    CommitTracer,
    CycleTracer,
    TraceEntry,
    attach_commit_tracer,
    trace_functional,
)

__all__ = [
    "SCHEMA", "Observability",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "PROBES", "Probe",
    "CycleTracer", "CommitTracer", "TraceEntry",
    "attach_commit_tracer", "trace_functional",
]
