"""Cycle-event tracing: bounded ring buffer, JSONL export, guest traces.

Two levels of tracing live here:

* :class:`CycleTracer` — the machine-wide event ring that probes
  (:mod:`repro.obs.probes`) feed: fetch stalls, mispredicts, bus
  arbitration, RSE check/error events, kernel scheduling.  Bounded by a
  ``deque(maxlen=...)`` so a long run costs O(capacity) memory; the
  drop count is derivable (``emitted - buffered``) and exported.
* guest-program tracers — :func:`trace_functional` (architectural
  instruction trace on the functional simulator) and
  :class:`CommitTracer` (an RSE observer module recording the pipeline's
  retirement stream), both migrated from ``repro.analysis.tracing``,
  which remains as a re-export shim.
"""

import json
from collections import deque

from repro.funcsim.interp import FuncSim
from repro.isa.registers import reg_name
from repro.rse.module import ModuleMode, RSEModule

DEFAULT_CAPACITY = 65536


class CycleTracer:
    """Bounded ring buffer of ``(cycle, kind, data)`` machine events.

    ``emit`` is the per-event hot call — one tuple build and one deque
    append; the deque's maxlen does the eviction, so there is no
    explicit overflow branch.
    """

    def __init__(self, capacity=DEFAULT_CAPACITY):
        self.capacity = capacity
        self.buffer = deque(maxlen=capacity)
        self.emitted_total = 0

    def emit(self, cycle, kind, data=None):
        self.buffer.append((cycle, kind, data))
        self.emitted_total += 1

    @property
    def dropped(self):
        return self.emitted_total - len(self.buffer)

    def events(self, kind=None):
        """Buffered events, oldest first, optionally filtered by kind."""
        if kind is None:
            return list(self.buffer)
        return [event for event in self.buffer if event[1] == kind]

    def clear(self):
        self.buffer.clear()
        self.emitted_total = 0

    def export_jsonl(self, path):
        """Write the buffered events to *path*, one JSON object per line.

        Returns the number of events written.  The first line is a
        header record (``kind="trace"``) carrying capacity/drop info so
        a reader knows whether the window is complete.
        """
        with open(path, "w") as handle:
            header = {"kind": "trace", "capacity": self.capacity,
                      "emitted": self.emitted_total,
                      "buffered": len(self.buffer),
                      "dropped": self.dropped}
            handle.write(json.dumps(header) + "\n")
            for cycle, kind, data in self.buffer:
                record = {"kind": "event", "cycle": cycle, "event": kind}
                if data is not None:
                    record["data"] = data
                handle.write(json.dumps(record) + "\n")
        return len(self.buffer)

    def snapshot(self):
        return {"capacity": self.capacity, "emitted": self.emitted_total,
                "buffered": len(self.buffer), "dropped": self.dropped}

    def __len__(self):
        return len(self.buffer)


# --------------------------------------------------------- guest tracing


class TraceEntry:
    """One retired/executed instruction in a trace."""

    __slots__ = ("index", "pc", "text", "reg_writes", "cycle")

    def __init__(self, index, pc, text, reg_writes=(), cycle=None):
        self.index = index
        self.pc = pc
        self.text = text
        self.reg_writes = reg_writes
        self.cycle = cycle

    def render(self):
        effects = "  ".join("$%s=0x%08x" % (reg_name(reg), value)
                            for reg, value in self.reg_writes)
        stamp = "" if self.cycle is None else "[%8d] " % self.cycle
        line = "%s%6d  %08x  %-36s %s" % (stamp, self.index, self.pc,
                                          self.text, effects)
        return line.rstrip()


def trace_functional(memory, entry, sp=0x7FFF0000, max_steps=10_000,
                     syscall_handler=None):
    """Run a program on the functional simulator, recording every step.

    Returns ``(entries, sim)``; each entry carries the disassembly and
    the architectural register writes it performed.
    """
    from repro.isa.encoding import DecodeError, decode
    from repro.memory.mainmem import MemoryFault

    sim = FuncSim(memory, entry=entry, sp=sp,
                  syscall_handler=syscall_handler)
    entries = []
    for index in range(max_steps):
        pc = sim.pc
        try:
            instr = decode(memory.load_word(pc))
            text = instr.disassemble()
        except (DecodeError, MemoryFault) as exc:
            text = "<fetch fault: %s>" % exc
            instr = None
        before = list(sim.regs)
        result = sim.step()
        writes = tuple((reg, sim.regs[reg]) for reg in range(32)
                       if sim.regs[reg] != before[reg])
        entries.append(TraceEntry(index, pc, text, writes))
        if result.value != "ok":
            break
    return entries, sim


class CommitTracer(RSEModule):
    """RSE module recording the pipeline's retirement stream."""

    MODULE_ID = 10
    MODE = ModuleMode.ASYNC

    def __init__(self, limit=100_000):
        super().__init__("CommitTracer")
        self.limit = limit
        self.entries = []

    def on_commit(self, uop, cycle):
        if len(self.entries) >= self.limit:
            return
        self.entries.append(TraceEntry(len(self.entries), uop.pc,
                                       uop.instr.disassemble(),
                                       cycle=cycle))

    def render(self, last=None):
        entries = self.entries if last is None else self.entries[-last:]
        return "\n".join(entry.render() for entry in entries)


def attach_commit_tracer(machine, limit=100_000):
    """Attach (and enable) a :class:`CommitTracer` to a machine's RSE.

    Prefer ``machine.obs.attach("commit", limit=...)``, which routes
    through the probe registry; this helper remains the underlying
    mechanism (and the historical API).
    """
    if machine.rse is None:
        raise ValueError("commit tracing needs a machine with the RSE")
    tracer = machine.rse.attach(CommitTracer(limit))
    machine.rse.enable_module(CommitTracer.MODULE_ID)
    return tracer
