"""The Observability hub: one object per machine owning all telemetry.

``machine.obs`` aggregates the three telemetry mechanisms behind one
surface:

* **sections** — components register a ``snapshot() -> dict`` provider
  (``obs.register("pipeline", pipeline.snapshot)``); ``obs.document()``
  composes them into the single schema-stable nested document that
  ``Machine.snapshot()`` returns and ``repro run --stats-json`` writes.
* **metrics** — a :class:`~repro.obs.metrics.MetricsRegistry` fed by
  probes.
* **tracer** — a :class:`~repro.obs.tracer.CycleTracer` event ring,
  also fed by probes, exported with :meth:`export_jsonl`.

Probes are strictly opt-in: ``obs.attach("fetch_stall")`` instruments
the machine (see :mod:`repro.obs.probes` for the attach-time shadowing
that makes detached probes literally free), ``obs.detach()`` removes
every trace of them.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.probes import PROBES
from repro.obs.tracer import CycleTracer

#: Version tag carried by every snapshot document.  Bump only on
#: incompatible key-structure changes; adding counters is compatible.
SCHEMA = "repro.obs/1"


class Observability:
    """Per-machine telemetry hub (sections + metrics + tracer + probes)."""

    def __init__(self, machine=None, trace_capacity=None):
        self.machine = machine
        self.metrics = MetricsRegistry()
        self.tracer = (CycleTracer(trace_capacity) if trace_capacity
                       else CycleTracer())
        self._sections = {}          # name -> snapshot provider, in order
        self._probes = {}            # name -> attached Probe instance
        self._probe_kwargs = {}      # name -> kwargs it was attached with

    # ------------------------------------------------------------ sections

    def register(self, name, provider):
        """Register a component's ``snapshot``-style provider.

        *provider* is a zero-argument callable returning a plain dict
        (or None for an absent component); registration order is the
        document's key order.
        """
        self._sections[name] = provider

    def sections(self):
        return list(self._sections)

    def document(self, cycle=None):
        """Compose the full snapshot document from every registered section."""
        if cycle is None and self.machine is not None:
            cycle = self.machine.cycle
        doc = {"schema": SCHEMA, "cycle": cycle}
        for name, provider in self._sections.items():
            doc[name] = provider() if provider is not None else None
        doc["obs"] = self.snapshot()
        return doc

    def snapshot(self):
        """The hub's own section: probe roster, metrics, trace summary."""
        return {"probes": sorted(self._probes),
                "metrics": self.metrics.snapshot(),
                "trace": self.tracer.snapshot()}

    # -------------------------------------------------------------- probes

    def attach(self, name, **kwargs):
        """Attach probe *name* (see ``repro.obs.probes.PROBES``).

        Returns the probe instance (e.g. the ``commit`` probe exposes
        the :class:`CommitTracer` module as ``.tracer``).

        Re-attaching an already-attached probe with the same kwargs is
        a no-op returning the existing instance; different kwargs raise
        (the live probe was built with the old ones — detach first).
        """
        if self.machine is None:
            raise RuntimeError("hub is not bound to a machine")
        if name in self._probes:
            if kwargs != self._probe_kwargs[name]:
                raise ValueError(
                    "probe %r is already attached with %r; detach it "
                    "before re-attaching with %r"
                    % (name, self._probe_kwargs[name], kwargs))
            return self._probes[name]
        factory = PROBES.get(name)
        if factory is None:
            raise KeyError("unknown probe %r (available: %s)"
                           % (name, ", ".join(sorted(PROBES))))
        probe = factory(**kwargs)
        probe.attach(self.machine, self)
        self._probes[name] = probe
        self._probe_kwargs[name] = kwargs
        return probe

    def detach(self, name=None):
        """Detach probe *name*, or every attached probe when None."""
        if name is None:
            for attached in list(self._probes):
                self.detach(attached)
            return
        probe = self._probes.pop(name, None)
        self._probe_kwargs.pop(name, None)
        if probe is not None:
            probe.detach(self.machine)

    def attached(self):
        return sorted(self._probes)

    def probe(self, name):
        return self._probes.get(name)

    # ------------------------------------------------------------- export

    def export_jsonl(self, path):
        """Write the trace ring to *path* (JSONL); returns events written."""
        return self.tracer.export_jsonl(path)

    def reset(self):
        """Clear hub-side telemetry (metrics and trace ring)."""
        self.metrics.reset()
        self.tracer.clear()
