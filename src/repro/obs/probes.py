"""Pluggable machine probes — zero-cost when detached.

A probe instruments a component by **shadowing** one of its bound
methods with a wrapping closure stored as an *instance attribute*
(instance attributes win the lookup over class methods).  Detaching
deletes the instance attribute, restoring the class method.  The
consequence is the property ISSUE 3 demands: with no probe attached
there is not a single extra branch, flag test or indirection anywhere
in the simulation hot paths — the guard happens once, at attach time,
not per event.

Available probes (``PROBES`` registry, used by
``machine.obs.attach(name)``):

=============  ========================================================
name           instruments
=============  ========================================================
fetch_stall    I-fetch misses (latency histogram + events)
mispredict     branch/jump mispredictions at writeback
bus            bus arbitration: CPU/MAU transfer waits (MAU histogram)
rse            IOQ occupancy, CHECK-to-commit latency, error
               transitions
sched          kernel context switches (thread id events)
commit         retirement trace via the :class:`CommitTracer` RSE
               module
=============  ========================================================
"""

from repro.obs.tracer import CommitTracer


class Probe:
    """Base class: bookkeeping for attach-time method shadowing."""

    name = None

    def __init__(self):
        self._shadowed = []

    def attach(self, machine, obs):
        raise NotImplementedError

    def detach(self, machine):
        for obj, attr in self._shadowed:
            obj.__dict__.pop(attr, None)
        self._shadowed = []

    def _shadow(self, obj, attr, wrapper):
        """Install *wrapper* over ``obj.attr`` for the lifetime of the probe."""
        if attr in obj.__dict__:
            raise RuntimeError("%s.%s is already shadowed" %
                               (type(obj).__name__, attr))
        setattr(obj, attr, wrapper)
        self._shadowed.append((obj, attr))


class FetchStallProbe(Probe):
    """I-cache miss latency, observed at the hierarchy's ifetch port."""

    name = "fetch_stall"

    def attach(self, machine, obs):
        hierarchy = machine.hierarchy
        orig = hierarchy.ifetch
        misses = obs.metrics.counter("pipeline.fetch_miss_events")
        latency = obs.metrics.histogram("pipeline.fetch_miss_latency")
        emit = obs.tracer.emit

        def ifetch(now, addr):
            done = orig(now, addr)
            wait = done - now
            if wait > 1:          # anything beyond an L1 hit stalls fetch
                misses.inc()
                latency.observe(wait)
                emit(now, "fetch_stall", {"pc": addr, "latency": wait})
            return done

        self._shadow(hierarchy, "ifetch", ifetch)


class MispredictProbe(Probe):
    """Branch/jump direction+target misses, observed at predictor update."""

    name = "mispredict"

    def attach(self, machine, obs):
        pipeline = machine.pipeline
        predictor = pipeline.predictor
        orig = predictor.record_hit
        count = obs.metrics.counter("pipeline.mispredict_events")
        emit = obs.tracer.emit

        def record_hit(correct):
            if not correct:
                count.inc()
                emit(pipeline.cycle, "mispredict",
                     {"fetch_pc": pipeline.fetch_pc})
            orig(correct)

        self._shadow(predictor, "record_hit", record_hit)


class BusProbe(Probe):
    """Bus arbitration: per-side transfer waits (MAU wait distribution)."""

    name = "bus"

    def attach(self, machine, obs):
        bus = machine.hierarchy.bus
        orig_cpu = bus.cpu_transfer
        orig_mau = bus.mau_transfer
        cpu_wait = obs.metrics.histogram("bus.cpu_wait")
        mau_wait = obs.metrics.histogram("bus.mau_wait")
        conflicts = obs.metrics.counter("bus.arbitration_conflicts")
        emit = obs.tracer.emit

        def cpu_transfer(now, nbytes):
            wait = bus.busy_until - now
            if wait > 0:
                conflicts.inc()
                cpu_wait.observe(wait)
                emit(now, "bus_wait", {"side": "cpu", "wait": wait,
                                       "bytes": nbytes})
            return orig_cpu(now, nbytes)

        def mau_transfer(now, nbytes):
            wait = max(bus.busy_until - now, 0)
            mau_wait.observe(wait)
            if wait > 0:
                conflicts.inc()
                emit(now, "bus_wait", {"side": "mau", "wait": wait,
                                       "bytes": nbytes})
            return orig_mau(now, nbytes)

        self._shadow(bus, "cpu_transfer", cpu_transfer)
        self._shadow(bus, "mau_transfer", mau_transfer)


class RSEProbe(Probe):
    """Framework telemetry: IOQ occupancy, CHECK latency, error events."""

    name = "rse"

    def attach(self, machine, obs):
        rse = machine.rse
        if rse is None:
            raise ValueError("the 'rse' probe needs a machine with the RSE")
        orig_dispatch = rse.on_dispatch
        orig_commit = rse.on_commit
        orig_error = rse.note_error_transition
        ioq = rse.ioq
        occupancy = obs.metrics.histogram("rse.ioq_occupancy",
                                          bounds=(1, 2, 4, 8, 16, 32))
        latency = obs.metrics.histogram("rse.check_commit_latency")
        errors = obs.metrics.counter("rse.error_transitions")
        emit = obs.tracer.emit

        def on_dispatch(uop, cycle):
            orig_dispatch(uop, cycle)
            occupancy.observe(len(ioq))

        def on_commit(uop, cycle):
            # Read the entry before the engine frees it at commit.
            if uop.instr.is_check:
                entry = ioq.get(uop.seq)
                if entry is not None:
                    wait = cycle - entry.alloc_cycle
                    latency.observe(wait)
                    emit(cycle, "check_commit",
                         {"pc": uop.pc, "module": uop.instr.module,
                          "latency": wait})
            orig_commit(uop, cycle)

        def note_error_transition(module, entry, cycle):
            errors.inc()
            emit(cycle, "rse_error", {"module": module.name,
                                      "seq": entry.seq})
            orig_error(module, entry, cycle)

        self._shadow(rse, "on_dispatch", on_dispatch)
        self._shadow(rse, "on_commit", on_commit)
        self._shadow(rse, "note_error_transition", note_error_transition)


class SchedProbe(Probe):
    """Kernel scheduling: one event per context switch."""

    name = "sched"

    def attach(self, machine, obs):
        kernel = machine.kernel
        orig = kernel._schedule
        switches = obs.metrics.counter("kernel.sched_events")
        emit = obs.tracer.emit

        def _schedule(deadline=None):
            picked = orig(deadline)
            if picked:
                emit(kernel.pipeline.cycle, "sched",
                     {"tid": kernel.current.tid,
                      "name": kernel.current.name})
                switches.inc()
            return picked

        self._shadow(kernel, "_schedule", _schedule)


class CommitTraceProbe(Probe):
    """Retirement trace: attaches the :class:`CommitTracer` RSE module.

    ``machine.obs.attach("commit")`` is the supported spelling of the
    historical ``attach_commit_tracer(machine)``; the tracer module is
    exposed as the probe's ``tracer`` attribute.
    """

    name = "commit"

    def __init__(self, limit=100_000):
        super().__init__()
        self.limit = limit
        self.tracer = None

    def attach(self, machine, obs):
        if machine.rse is None:
            raise ValueError("commit tracing needs a machine with the RSE")
        self.tracer = machine.rse.attach(CommitTracer(self.limit))
        machine.rse.enable_module(CommitTracer.MODULE_ID)

    def detach(self, machine):
        if self.tracer is not None and machine.rse is not None:
            machine.rse.disable_module(CommitTracer.MODULE_ID)
            machine.rse.modules.pop(CommitTracer.MODULE_ID, None)
        self.tracer = None
        super().detach(machine)


PROBES = {probe.name: probe
          for probe in (FetchStallProbe, MispredictProbe, BusProbe,
                        RSEProbe, SchedProbe, CommitTraceProbe)}
