"""Sharded campaign service: warmed images, work stealing, merge.

The unsharded runner (:mod:`repro.campaign.runner`) fans *chunks of
injections* over a process pool that must stay alive for the whole
campaign.  This module scales the same deterministic campaign along a
different axis — **shards**:

* the injection space ``[0, spec.injections)`` splits into contiguous
  **seed-range shards**.  Because every injection derives from
  ``(campaign_seed, id)`` alone (:func:`repro.campaign.space
  .injection_at`), a shard materialises exactly its own injections with
  no shared RNG stream and no coordination;
* the parent simulates the campaign's warmup exactly once — assembly,
  golden run, machine build — and ships the result to every worker as a
  :class:`~repro.checkpoint.CampaignImage` (serialized machine
  checkpoint + golden results + spec fingerprint), so workers
  restore-and-strike instead of rebuilding and re-running the golden
  workload;
* workers **steal shards** from a shared queue: a fast worker that
  drains its shard immediately pulls the next one, so stragglers never
  gate the campaign.  Each shard appends to its **own JSONL store**
  (``<store>.shardNNN.jsonl``) whose header records the shard identity
  and id range — a shard store is self-describing and individually
  resumable, so SIGKILLing any worker loses at most one in-flight
  record;
* after the workers drain the queue the parent re-plans: shards left
  incomplete by dead workers are re-queued for another worker round,
  and whatever still remains after :data:`WORKER_ROUNDS` rounds is
  finished in-parent — the service always completes;
* :func:`merge_shards` folds the shard stores into one merged store,
  verifying every shard's fingerprint and deduplicating by injection
  id.  Records are deterministic, so the merged store is byte-identical
  (modulo order, and the merge sorts) to a single-process run's store.

Fault-injected testing rides on two environment hooks: when
``REPRO_CAMPAIGN_KILL_FILE`` names an existing file, the first worker
to append ``REPRO_CAMPAIGN_KILL_AFTER`` records (default 3) atomically
claims the file by deleting it and SIGKILLs itself — at most one kill
per flag file, injected without patching any production code path.
"""

import multiprocessing
import os
import queue as queue_mod
import shutil
import signal
import tempfile

from repro.campaign.runner import (CampaignContext, CampaignRun,
                                   CampaignSpec, _full_coverage,
                                   build_campaign_machine, execute_injection,
                                   strike_injection)
from repro.campaign.space import injection_at
from repro.campaign.store import ResultStore
from repro.checkpoint import CampaignImage

#: Worker rounds before the parent finishes remaining shards itself.
WORKER_ROUNDS = 2

#: How long an idle worker waits on the shard queue before exiting.
#: Also the recovery bound when a SIGKILLed worker dies holding the
#: queue's reader lock: ``Queue.get`` applies the timeout to the lock
#: acquisition, so surviving workers see ``Empty`` and return to the
#: parent instead of deadlocking.
STEAL_TIMEOUT = 0.5

KILL_FILE_ENV = "REPRO_CAMPAIGN_KILL_FILE"
KILL_AFTER_ENV = "REPRO_CAMPAIGN_KILL_AFTER"


class ServiceError(RuntimeError):
    """The sharded service cannot produce a complete, verified campaign."""


# ------------------------------------------------------------------ planning

def plan_shards(total, shards):
    """Split ``[0, total)`` into ``(shard_id, start, stop)`` ranges.

    Contiguous, non-empty, covering: the shard count clamps to *total*
    so no shard is empty, and the remainder spreads one extra injection
    over the leading shards.
    """
    if total <= 0:
        return []
    shards = max(1, min(int(shards), total))
    base, extra = divmod(total, shards)
    plan = []
    start = 0
    for shard_id in range(shards):
        size = base + (1 if shard_id < extra else 0)
        plan.append((shard_id, start, start + size))
        start += size
    return plan


def shard_store_path(store_path, shard_id):
    """Per-shard store path derived from the merged store path."""
    root, ext = os.path.splitext(store_path)
    return "%s.shard%03d%s" % (root, shard_id, ext or ".jsonl")


# ---------------------------------------------------------------- kill switch

class _KillSwitch:
    """Deterministic worker-death injection for crash-recovery tests.

    Armed purely through the environment so production code paths stay
    untouched.  The flag file is the claim token: deleting it is atomic,
    so exactly one worker dies per armed file no matter how many race.
    """

    def __init__(self):
        self.path = os.environ.get(KILL_FILE_ENV)
        self.after = int(os.environ.get(KILL_AFTER_ENV, "3"))
        self.appended = 0

    def tick(self):
        """Called after each append; may not return."""
        if not self.path:
            return
        self.appended += 1
        if self.appended < self.after:
            return
        try:
            os.remove(self.path)        # atomic claim; losers keep running
        except OSError:
            self.path = None
            return
        os.kill(os.getpid(), signal.SIGKILL)


# --------------------------------------------------------------- warmed image

def build_campaign_image(spec, batch=True):
    """Warm a machine for *spec* and bundle it as a CampaignImage.

    Runs the campaign's one-time work — assembly, the golden run, the
    protected machine build — and captures the pristine cycle-0 machine.
    The bundle carries the golden results in ``meta`` so receiving
    workers skip the golden run too, and the spec fingerprint so a
    worker can refuse an image warmed for a different campaign.
    """
    ctx = CampaignContext(spec, batch=batch)
    if getattr(ctx.model, "owns_execution", False):
        # Generative models build a fresh guest program per injection:
        # there is no shared machine to warm, so the image is just the
        # fingerprint + golden stub that lets workers skip the context's
        # golden run (which the context already skipped here too).
        return CampaignImage(spec.fingerprint(), b"",
                             {"cycle": 0,
                              "golden": {"regs": {},
                                         "cycles": ctx.golden_cycles}})
    machine, __ = build_campaign_machine(ctx.asm, spec.protected, batch=batch)
    checkpoint = machine.checkpoint()
    meta = {"cycle": checkpoint.cycle,
            "golden": {"regs": {str(reg): value
                                for reg, value in ctx.golden_regs.items()},
                       "cycles": ctx.golden_cycles}}
    return CampaignImage(spec.fingerprint(), checkpoint.to_bytes(), meta)


class ImageEngine:
    """Restore-and-strike execution from a deserialized campaign image.

    Keeps one machine of the campaign's shape and rewinds it to the
    image's pristine state before every strike.  Restore is cycle-exact,
    so records are identical to fresh-machine execution — the engine is
    purely a way to skip the per-injection machine build.
    """

    def __init__(self, ctx, image):
        image.verify(ctx.spec.fingerprint())
        self.ctx = ctx
        self.checkpoint = image.checkpoint()
        self.machine, __ = build_campaign_machine(ctx.asm, ctx.spec.protected,
                                                  batch=ctx.batch)
        # Restore immediately: a shape mismatch (image warmed protected,
        # worker built bare) must surface here, not mid-shard.
        self.machine.restore(self.checkpoint)

    def run(self, injection):
        try:
            self.machine.restore(self.checkpoint)
            return strike_injection(self.ctx, self.machine, injection)
        except Exception:
            # Cold-path fallback produces the identical record (and owns
            # crash isolation); the shared machine may be mid-strike, so
            # never reuse it for the failed injection.
            return execute_injection(self.ctx, injection)


def _build_engine(ctx, image):
    """``injection -> record`` callable for one worker process.

    Monitored campaigns (``spec.assertions``) take the cold path: the
    invariant monitor hangs state off the machine that a restore does
    not rewind, so reusing one machine would leak one strike's
    violations into the next run's classification.
    """
    if ctx.spec.assertions or getattr(ctx.model, "owns_execution", False):
        return lambda injection: execute_injection(ctx, injection)
    try:
        return ImageEngine(ctx, image).run
    except Exception:
        return lambda injection: execute_injection(ctx, injection)


# ------------------------------------------------------------ shard execution

def _process_shard(ctx, engine, shard, path, kill=None):
    """Run (or resume) one shard against its own store."""
    shard_id, start, stop = shard
    spec = ctx.spec
    store = ResultStore(path)
    done = set()
    if store.exists():
        __, prior = store.verify(spec.fingerprint())
        done = {record["id"] for record in prior}
    else:
        store.write_header(spec.fingerprint(), spec.to_dict(),
                           extra={"shard": {"id": shard_id, "start": start,
                                            "stop": stop}})
    space = ctx.model.build_space(ctx)
    try:
        for index in range(start, stop):
            if index in done:
                continue
            injection = injection_at(ctx.model, space, index, spec.seed)
            store.append(engine(injection))
            if kill is not None:
                kill.tick()
    finally:
        store.close()


def _service_worker(spec_dict, image_bytes, task_queue, store_root, batch):
    """Worker loop: steal shards until the queue stays empty."""
    spec = CampaignSpec.from_dict(spec_dict)
    image = CampaignImage.from_bytes(image_bytes)
    ctx = CampaignContext(spec, batch=batch, golden=image.meta["golden"])
    engine = _build_engine(ctx, image)
    kill = _KillSwitch()
    while True:
        try:
            shard = task_queue.get(timeout=STEAL_TIMEOUT)
        except queue_mod.Empty:
            return
        _process_shard(ctx, engine, shard, shard_store_path(store_root,
                                                            shard[0]),
                       kill=kill)


def _run_worker_round(spec, options, todo, image_bytes, store_root):
    """One worker round over the *todo* shards; survives worker death."""
    mp = multiprocessing.get_context()
    task_queue = mp.Queue()
    for shard in todo:
        task_queue.put(shard)
    count = max(1, min(options.workers, len(todo)))
    workers = [mp.Process(target=_service_worker,
                          args=(spec.to_dict(), image_bytes, task_queue,
                                store_root, options.batch),
                          daemon=True)
               for __ in range(count)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    # Shards may remain enqueued (all workers died early); the parent
    # re-plans from the stores, so just detach from the queue cleanly.
    task_queue.cancel_join_thread()
    task_queue.close()


def _shard_done_ids(spec, shard, path):
    """Ids in ``[start, stop)`` that *path* already holds records for."""
    __, start, stop = shard
    store = ResultStore(path)
    if not store.exists():
        return set()
    __, records = store.verify(spec.fingerprint())
    return {record["id"] for record in records if start <= record["id"] < stop}


def _incomplete_shards(spec, shards, store_root):
    """The shards whose stores do not yet cover their full id range."""
    todo = []
    for shard in shards:
        __, start, stop = shard
        done = _shard_done_ids(spec, shard, shard_store_path(store_root,
                                                             shard[0]))
        if not set(range(start, stop)) <= done:
            todo.append(shard)
    return todo


# -------------------------------------------------------------------- merging

def merge_shards(spec, shard_paths, merged_path=None):
    """Fold shard stores into one verified, deduplicated record list.

    Every shard store's fingerprint is checked against *spec* (a foreign
    shard raises :class:`~repro.campaign.store.StoreMismatch`), records
    are deduplicated by injection id (first wins; records are
    deterministic so duplicates are identical), and missing coverage is
    a loud :class:`ServiceError`.  With *merged_path* the result is also
    written as a normal campaign store, indistinguishable from one a
    single-process run would have produced.
    """
    fingerprint = spec.fingerprint()
    records = []
    seen = set()
    for path in shard_paths:
        store = ResultStore(path)
        if not store.exists():
            raise ServiceError("shard store %s is missing" % path)
        __, shard_records = store.verify(fingerprint)
        for record in shard_records:
            if record["id"] in seen:
                continue
            seen.add(record["id"])
            records.append(record)
    missing = set(range(spec.injections)) - seen
    if missing:
        raise ServiceError("shard stores cover %d/%d injections "
                           "(first missing id: %d)"
                           % (len(seen), spec.injections, min(missing)))
    records.sort(key=lambda record: record["id"])
    if merged_path:
        merged = ResultStore(merged_path)
        merged.write_header(fingerprint, spec.to_dict())
        for record in records:
            merged.append(record)
        merged.close()
    return records


# ------------------------------------------------------------------- service

def run_service(spec, options, progress=None):
    """Execute *spec* as a sharded campaign; returns a CampaignRun.

    The orchestration loop: plan shards, warm one image, run worker
    rounds (re-queueing shards that dead workers left incomplete),
    finish any remainder in-parent, merge.  Reached via
    ``run_campaign(spec, options=ExecutionOptions(shards=N, ...))``.
    """
    total = spec.injections
    tempdir = None
    if options.store:
        store_root = options.store
        merged = ResultStore(store_root)
        if merged.exists():
            __, prior = merged.verify(spec.fingerprint())
            if _full_coverage(spec, prior):
                if progress is not None:
                    progress(total, total)
                return CampaignRun(spec, prior, options)
    else:
        tempdir = tempfile.mkdtemp(prefix="repro-campaign-")
        store_root = os.path.join(tempdir, "campaign.jsonl")
    shards = plan_shards(total, options.shards)
    try:
        image = build_campaign_image(spec, batch=options.batch)
        image_bytes = image.to_bytes()

        def report():
            if progress is not None:
                done = set()
                for shard in shards:
                    done |= _shard_done_ids(
                        spec, shard, shard_store_path(store_root, shard[0]))
                progress(len(done), total)

        rounds = 0
        while True:
            todo = _incomplete_shards(spec, shards, store_root)
            if not todo:
                break
            if rounds >= WORKER_ROUNDS:
                # Completion guarantee: whatever worker rounds could not
                # finish (repeated kills, a broken pool host) runs here,
                # in-process, where nothing can be stolen out from under
                # it.
                ctx = CampaignContext(spec, batch=options.batch,
                                      golden=image.meta["golden"])
                engine = _build_engine(ctx, image)
                for shard in todo:
                    _process_shard(ctx, engine, shard,
                                   shard_store_path(store_root, shard[0]))
                report()
                break
            rounds += 1
            _run_worker_round(spec, options, todo, image_bytes, store_root)
            report()

        records = merge_shards(
            spec, [shard_store_path(store_root, shard[0])
                   for shard in shards],
            merged_path=options.store)
        if progress is not None:
            progress(total, total)
        return CampaignRun(spec, records, options)
    finally:
        if tempdir is not None:
            shutil.rmtree(tempdir, ignore_errors=True)
