"""Fault-model registry for injection campaigns.

The paper evaluates every RSE module by injecting faults or attacks and
tabulating what the machine does.  A :class:`FaultModel` generalizes
that recipe beyond the original ICM bit-flip loop: each model describes

* a **sample space** — the set of places/times a fault can land, derived
  once per campaign from the assembled workload (:meth:`build_space`);
* a **sampler** — a deterministic draw of one injection's parameters
  from a seeded RNG (:meth:`sample`);
* an **armer** — how to mutate a freshly built machine before the run
  (:meth:`arm`), optionally returning a *trigger cycle* for faults that
  strike mid-execution;
* a **firer** — the mid-run perturbation applied at the trigger cycle
  (:meth:`fire`).

Models are registered by name in :data:`MODELS` so the CLI, the result
store and the resume path can reconstruct them from strings.
"""

import enum

from repro.isa.encoding import flip_bit

#: Upper bound used when a workload has no ``.data`` segment: the
#: mem-flip model then targets this many words just below the stack top.
STACK_FALLBACK_WORDS = 64


class Outcome(enum.Enum):
    """What one injected run did."""

    DETECTED = "detected"        # RSE CHECK_ERROR before any damage
    ASSERTION = "assertion"      # invariant suite flagged the corruption
    FAULTED = "faulted"          # architectural fault surfaced instead
    CORRUPTED = "corrupted"      # ran to completion with wrong results
    BENIGN = "benign"            # ran to completion, results intact
    HUNG = "hung"                # exceeded the per-run cycle budget
    CRASHED = "crashed"          # the simulator worker itself died
    NOT_TRIGGERED = "not_triggered"  # run ended before fire(); no fault landed


class Injection:
    """One fully specified injection, replayable by its id."""

    __slots__ = ("id", "model", "seed", "params")

    def __init__(self, injection_id, model, seed, params):
        self.id = injection_id
        self.model = model
        self.seed = seed
        self.params = params

    def to_dict(self):
        return {"id": self.id, "model": self.model, "seed": self.seed,
                "params": self.params}

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["id"], payload["model"], payload["seed"],
                   payload["params"])

    def __repr__(self):
        return "Injection(#%d %s %r)" % (self.id, self.model, self.params)


MODELS = {}

#: Modules that register additional fault models on import.  Imported
#: lazily by :func:`get_model` so the campaign core never depends on the
#: layers above it (the attack corpus lives in ``repro.security``).
MODEL_PROVIDERS = ("repro.security.attackgen",)


def register(cls):
    MODELS[cls.name] = cls
    return cls


def get_model(name, **options):
    """Instantiate a registered fault model by name."""
    if name not in MODELS:
        import importlib

        for provider in MODEL_PROVIDERS:
            importlib.import_module(provider)
            if name in MODELS:
                break
    try:
        factory = MODELS[name]
    except KeyError:
        raise ValueError("unknown fault model %r (have: %s)"
                         % (name, ", ".join(sorted(MODELS))))
    return factory(**options)


class FaultModel:
    """Base class; subclasses define one way the hardware can break."""

    name = None

    #: True when :meth:`arm` never touches the machine (it only derives
    #: the trigger cycle from *params*), so it may be called with
    #: ``machine=None`` and the run up to the trigger is workload-pure.
    #: That purity is what lets the campaign runner share one simulated
    #: prefix across injections in ``--fork`` mode.
    arm_is_pure = False

    #: False when the model synthesises its own guest program per
    #: injection (the attack corpus): ``spec.source`` is then only a
    #: fingerprint tag, and the campaign context skips assembling it,
    #: the golden run and the target enumerations.
    needs_workload = True

    #: True when the model runs the whole injection itself through
    #: :meth:`execute` instead of the shared arm/run/fire/classify
    #: machinery — generated programs classify from their own
    #: architectural state, not against golden registers.
    owns_execution = False

    def build_space(self, ctx):
        """Derive the picklable sample space from a campaign context."""
        raise NotImplementedError

    def sample(self, rng, space):
        """Draw one injection's parameters from *space* using *rng*."""
        raise NotImplementedError

    def arm(self, machine, ctx, params):
        """Mutate *machine* before the run.  Returns a trigger cycle for
        mid-run faults, or None when the mutation is complete."""
        return None

    def fire(self, machine, ctx, params):
        """Apply the mid-run perturbation at the trigger cycle."""

    def execute(self, ctx, injection):
        """Run one injection end to end (``owns_execution`` models only).

        Returns the record dict the shared runner would have produced;
        must be deterministic in ``injection.params`` alone.
        """
        raise NotImplementedError


def _trigger_window(ctx):
    """Cycles during which a mid-run fault can strike: [1, golden end)."""
    return max(2, min(ctx.golden_cycles, ctx.spec.max_cycles) - 1)


@register
class InstructionBitFlip(FaultModel):
    """Flip 1..k bits of a checked instruction word in memory — the ICM
    coverage model (Section 4.3): corruption anywhere on the
    memory -> cache -> fetch path."""

    name = "instr-flip"

    def __init__(self, bits=1):
        self.bits = bits

    def build_space(self, ctx):
        if not ctx.checked_pcs:
            raise ValueError("workload has no checked instructions")
        return {"pcs": ctx.checked_pcs, "bits": self.bits}

    def sample(self, rng, space):
        return {"pc": rng.choice(space["pcs"]),
                "bits": rng.sample(range(32), space["bits"])}

    def arm(self, machine, ctx, params):
        word = machine.memory.load_word(params["pc"])
        for bit in params["bits"]:
            word = flip_bit(word, bit)
        machine.memory.store_word(params["pc"], word)
        return None


@register
class RegisterFileBitFlip(FaultModel):
    """Flip one bit of an architectural register at a trigger cycle —
    a particle strike in the register file mid-execution.

    The strike hits wherever the register's current value physically
    lives: the architectural file, and — because the simulator's rename
    map bypasses the file for registers with an in-flight producer — the
    producer's computed result, so the flip is visible to consumers that
    would forward instead of reading the file."""

    name = "reg-flip"
    arm_is_pure = True

    def build_space(self, ctx):
        return {"regs": list(range(1, 32)), "max_cycle": _trigger_window(ctx)}

    def sample(self, rng, space):
        return {"reg": rng.choice(space["regs"]),
                "bit": rng.randrange(32),
                "cycle": rng.randrange(1, space["max_cycle"])}

    def arm(self, machine, ctx, params):
        return params["cycle"]

    def fire(self, machine, ctx, params):
        mask = 1 << params["bit"]
        pipeline = machine.pipeline
        pipeline.regs[params["reg"]] ^= mask
        producer = pipeline.rename.get(params["reg"])
        if producer is not None and producer.value is not None:
            producer.value ^= mask


@register
class DataMemoryBitFlip(FaultModel):
    """Flip one bit of a data word at a trigger cycle — an upset in main
    memory under live data.  Targets the ``.data`` segment, or a window
    below the stack top when the workload has no data segment."""

    name = "mem-flip"
    arm_is_pure = True

    def build_space(self, ctx):
        addrs = list(ctx.data_words)
        if not addrs:
            top = ctx.stack_top
            addrs = [top - 4 * (i + 1) for i in range(STACK_FALLBACK_WORDS)]
        return {"addrs": addrs, "max_cycle": _trigger_window(ctx)}

    def sample(self, rng, space):
        return {"addr": rng.choice(space["addrs"]),
                "bit": rng.randrange(32),
                "cycle": rng.randrange(1, space["max_cycle"])}

    def arm(self, machine, ctx, params):
        return params["cycle"]

    def fire(self, machine, ctx, params):
        word = machine.memory.load_word(params["addr"])
        machine.memory.store_word(params["addr"],
                                  flip_bit(word, params["bit"]))


@register
class ControlFlowCorruption(FaultModel):
    """Corrupt the offset field of a control-flow instruction so it
    transfers to the wrong place while still decoding as control flow —
    the class of error the ICM's default (control-flow) coverage and the
    CFC module exist to catch."""

    name = "cf-corrupt"

    def __init__(self, bits=2):
        self.bits = bits

    def build_space(self, ctx):
        if not ctx.control_pcs:
            raise ValueError("workload has no control-flow instructions")
        return {"pcs": ctx.control_pcs, "bits": self.bits}

    def sample(self, rng, space):
        return {"pc": rng.choice(space["pcs"]),
                "bits": rng.sample(range(16), space["bits"])}

    def arm(self, machine, ctx, params):
        word = machine.memory.load_word(params["pc"])
        for bit in params["bits"]:
            word = flip_bit(word, bit)
        machine.memory.store_word(params["pc"], word)
        return None
