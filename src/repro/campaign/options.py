"""Execution options: *how* a campaign runs, never *what* it computes.

A campaign's records are fully determined by its
:class:`~repro.campaign.runner.CampaignSpec`; everything about worker
processes, chunking, sharding, checkpoint forking, the batch fast-path
and result storage is an execution detail that must never leak into the
spec fingerprint — the same spec run serially, sharded across workers,
or resumed from a half-written store produces identical records.

Those details used to accrete one keyword argument at a time on
:func:`~repro.campaign.runner.run_campaign` (``workers``,
``chunk_size``, ``store_path``, ``fork``, ``batch``); this module
consolidates them into one frozen dataclass so the canonical signature
is ``run_campaign(spec, options=ExecutionOptions(...))`` and the CLI,
the service and the benchmarks all build the same object in one place.
The old kwargs still work behind a ``DeprecationWarning`` shim in
``run_campaign``.
"""

import dataclasses

__all__ = ["ExecutionOptions"]


@dataclasses.dataclass(frozen=True)
class ExecutionOptions:
    """How to execute a campaign (not part of the spec fingerprint).

    Attributes:
        workers: >1 fans injections out over a process pool (unsharded
            mode) or caps the shard worker pool (sharded mode).
        chunk_size: injections handed to a pool worker per dispatch
            (unsharded mode only; shards are the dispatch unit when
            sharding).
        fork: share trigger prefixes via machine checkpoints instead of
            re-simulating the warmup per injection (pure-arm models).
        batch: False forces the pipeline's one-step()-per-cycle
            reference loop (``--no-jit``).
        shards: >0 routes execution through the sharded campaign
            service (:mod:`repro.campaign.service`): the injection
            space splits into that many seed-range shards with
            work-stealing workers and per-shard resumable stores.
        store: JSONL result store path; an existing store resumes the
            campaign.  In sharded mode this is the merged store and the
            per-shard stores live beside it.
    """

    workers: int = 1
    chunk_size: int = 16
    fork: bool = False
    batch: bool = True
    shards: int = 0
    store: str = None

    def replace(self, **changes):
        """A copy with *changes* applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self):
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload):
        names = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in payload.items()
                      if key in names})
