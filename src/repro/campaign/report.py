"""Analysis and reporting over campaign result records.

Everything here operates on plain record dicts — the JSONL rows the
store holds — so reports can be regenerated from a store file long after
the campaign ran, without touching the simulator.
"""

from repro.analysis.stats import rate, wilson_interval
from repro.analysis.tables import format_table
from repro.campaign.models import Outcome

#: Outcomes that mean the fault actually hurt an unprotected machine.
DAMAGE_OUTCOMES = (Outcome.FAULTED, Outcome.CORRUPTED, Outcome.HUNG,
                   Outcome.CRASHED)


def outcome_counts(records):
    """Ordered ``{outcome value: count}`` over *records*."""
    counts = {outcome.value: 0 for outcome in Outcome}
    for record in records:
        counts[record["outcome"]] = counts.get(record["outcome"], 0) + 1
    return counts


def detection_stats_from_counts(counts, z=1.96):
    """``(detected, total, rate, (ci_low, ci_high))`` from a counts dict.

    *total* counts only runs whose fault actually fired: NOT_TRIGGERED
    runs ended (or were skipped) before the trigger cycle, so they carry
    no information about detection and would deflate the rate.  Taking
    counts (not records) is what lets the live aggregator — which folds
    million-injection campaigns into a counts dict instead of holding
    records — report the same numbers as a post-hoc record scan.
    """
    total = sum(counts.values()) - counts.get(Outcome.NOT_TRIGGERED.value, 0)
    detected = counts.get(Outcome.DETECTED.value, 0)
    return detected, total, rate(detected, total), \
        wilson_interval(detected, total, z=z)


def detection_stats(records, z=1.96):
    """:func:`detection_stats_from_counts` over raw record dicts."""
    return detection_stats_from_counts(outcome_counts(records), z=z)


def damage_count_from_counts(counts):
    """Damaging runs (faulted/corrupted/hung/crashed) from a counts dict."""
    return sum(counts.get(outcome.value, 0) for outcome in DAMAGE_OUTCOMES)


def damage_count(records):
    """Runs where the fault faulted, corrupted, hung or crashed the run."""
    return damage_count_from_counts(outcome_counts(records))


def format_outcome_report(counts, title="Fault-injection campaign"):
    """Outcome table plus detection-rate interval, from a counts dict.

    The counts-based core of :func:`format_campaign_report`: the live
    aggregator renders exactly this, so the report it prints when the
    last shard lands is character-identical to the one a full record
    scan would produce.
    """
    counts = dict({outcome.value: 0 for outcome in Outcome}, **counts)
    total = sum(counts.values()) or 1
    rows = [[outcome, str(count), "%.1f%%" % (100.0 * count / total)]
            for outcome, count in counts.items()]
    detected, n, det_rate, (low, high) = detection_stats_from_counts(counts)
    lines = [format_table(["Outcome", "Runs", "Share"], rows, title=title)]
    lines.append("")
    lines.append("detection rate: %d/%d = %.1f%%  "
                 "(95%% Wilson CI: %.1f%% - %.1f%%)"
                 % (detected, n, 100 * det_rate, 100 * low, 100 * high))
    lines.append("damaging runs:  %d/%d"
                 % (damage_count_from_counts(counts), n))
    flagged = counts[Outcome.ASSERTION.value]
    if flagged:
        lines.append("assertion-flagged: %d run(s) caught by the "
                     "invariant suite (separate channel, not in the "
                     "module detection rate)" % flagged)
    skipped = counts[Outcome.NOT_TRIGGERED.value]
    if skipped:
        lines.append("not triggered:  %d run(s), excluded from the "
                     "detection rate" % skipped)
    return "\n".join(lines)


def format_campaign_report(records, title="Fault-injection campaign"):
    """One campaign's outcome table plus its detection-rate interval."""
    return format_outcome_report(outcome_counts(records), title=title)


def format_comparison(protected_records, baseline_records,
                      title="Protected vs unprotected"):
    """Side-by-side outcome table: same fault space, with and without
    the RSE protection — the paper's coverage-evaluation shape."""
    protected = outcome_counts(protected_records)
    baseline = outcome_counts(baseline_records)
    rows = [[outcome, str(protected[outcome]), str(baseline[outcome])]
            for outcome in protected]
    lines = [format_table(["Outcome", "Protected", "Unprotected"], rows,
                          title=title)]
    detected, n, det_rate, (low, high) = detection_stats(protected_records)
    lines.append("")
    lines.append("protected detection rate:   %d/%d = %.1f%%  "
                 "(95%% CI %.1f%% - %.1f%%)"
                 % (detected, n, 100 * det_rate, 100 * low, 100 * high))
    damaged = damage_count(baseline_records)
    total = len(baseline_records)
    dlow, dhigh = wilson_interval(damaged, total)
    lines.append("unprotected runs damaged:   %d/%d = %.1f%%  "
                 "(95%% CI %.1f%% - %.1f%%)"
                 % (damaged, total, 100 * rate(damaged, total),
                    100 * dlow, 100 * dhigh))
    return "\n".join(lines)
