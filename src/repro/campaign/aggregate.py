"""Incremental aggregation over live (or finished) campaign stores.

The sharded service writes records into per-shard JSONL stores *while
workers run*; this module is the read side: tail those stores as they
grow and keep live outcome counts, without ever holding the record set
in memory — a million-injection campaign aggregates into a counts dict
and a seen-id set, not a million dicts.

* :class:`StoreTail` — byte-offset tailer over one JSONL store.  Only
  complete (newline-terminated) lines are consumed; a torn line that a
  worker is mid-write on stays in the file until its newline lands, so
  polling during a crash never mis-parses a fragment.
* :class:`CampaignAggregator` — folds any number of store tails into
  outcome counts, deduplicated by injection id across stores (a record
  can legitimately appear in both a shard store and the merged store).
  The fingerprint of the first header seen is authoritative; records
  from a store with a different fingerprint are rejected loudly.

The aggregator publishes three views of the same counts:

* :meth:`CampaignAggregator.detection_matrix` — per-outcome counts with
  Wilson intervals plus the headline detection rate, the live
  equivalent of :func:`repro.campaign.report.detection_stats`;
* :meth:`CampaignAggregator.snapshot` — a schema-stable JSON document
  (:data:`SCHEMA`) including a :class:`repro.obs.MetricsRegistry`
  rollup, so campaign telemetry exports through the exact same
  counter/gauge/histogram shapes as machine telemetry;
* :meth:`CampaignAggregator.final_report` — the counts-based campaign
  report, character-identical to what a full record scan prints.

``repro campaign serve`` wraps this in a watch loop.
"""

import glob
import json
import os

from repro.analysis.stats import rate, wilson_interval
from repro.campaign.models import Outcome
from repro.campaign.report import (damage_count_from_counts,
                                   detection_stats_from_counts,
                                   format_outcome_report)
from repro.campaign.store import StoreMismatch
from repro.obs import MetricsRegistry

#: Version tag on every aggregator snapshot document.
SCHEMA = "repro.campaign.aggregate/1"


class StoreTail:
    """Incremental reader over one append-only JSONL store.

    Tracks a byte offset and consumes only newline-terminated lines, so
    a record a worker is mid-write on is never half-parsed — it is
    simply not consumed until its newline arrives.  A store that shrinks
    (header rewrite) resets the tail to the start; the aggregator's
    id-dedup makes the re-read harmless.
    """

    def __init__(self, path):
        self.path = path
        self.offset = 0

    def poll(self):
        """Parsed payloads of every complete line appended since last poll."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []                    # store not created yet
        if size < self.offset:
            self.offset = 0              # truncated / rewritten underneath us
        if size == self.offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            chunk = handle.read(size - self.offset)
        end = chunk.rfind(b"\n")
        if end < 0:
            return []                    # only a torn tail so far
        self.offset += end + 1
        payloads = []
        for line in chunk[:end].split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                payloads.append(json.loads(line.decode()))
            except (UnicodeDecodeError, ValueError):
                continue                 # torn line a resume terminated
        return payloads


def discover_stores(store_path):
    """The merged store plus every sibling shard store, sorted.

    Given the path handed to ``--store``, finds ``<root>.shardNNN<ext>``
    beside it (the sharded service's layout) so ``repro campaign serve``
    can watch a whole campaign from the one path the user already has.
    """
    root, ext = os.path.splitext(store_path)
    paths = sorted(glob.glob("%s.shard*%s" % (root, ext or ".jsonl")))
    if os.path.exists(store_path):
        paths.append(store_path)
    return paths or [store_path]


class CampaignAggregator:
    """Fold growing campaign stores into live outcome counts."""

    def __init__(self, paths, expected=None):
        self.tails = [StoreTail(path) for path in paths]
        self.expected = expected
        self.fingerprint = None
        self.spec = None
        self.counts = {outcome.value: 0 for outcome in Outcome}
        self.seen = set()
        self.assertion_flags = 0
        self.metrics = MetricsRegistry()
        self._cycles = self.metrics.histogram(
            "campaign.run_cycles",
            bounds=(100, 300, 1000, 3000, 10000, 30000, 100000, 300000))
        self._records = self.metrics.counter("campaign.records")
        self._progress = self.metrics.gauge("campaign.progress")

    @classmethod
    def watch(cls, store_path, expected=None):
        """Aggregator over everything :func:`discover_stores` finds."""
        return cls(discover_stores(store_path), expected=expected)

    # ------------------------------------------------------------------- feed

    def poll(self):
        """Consume new lines from every tail; returns new-record count."""
        fresh = 0
        for tail in self.tails:
            for payload in tail.poll():
                fresh += self._consume(tail.path, payload)
        self._progress.set(self.done)
        return fresh

    def _consume(self, path, payload):
        kind = payload.get("kind")
        if kind == "campaign":
            fingerprint = payload.get("fingerprint")
            if self.fingerprint is None:
                self.fingerprint = fingerprint
                self.spec = payload.get("spec")
            elif fingerprint != self.fingerprint:
                raise StoreMismatch(
                    "%s belongs to campaign %s, aggregating %s"
                    % (path, fingerprint, self.fingerprint))
            return 0
        if kind != "run":
            return 0
        run_id = payload.get("id")
        if run_id in self.seen:
            return 0                     # shard + merged store overlap
        self.seen.add(run_id)
        outcome = payload.get("outcome")
        self.counts[outcome] = self.counts.get(outcome, 0) + 1
        self.assertion_flags += 1 if payload.get("assertions") else 0
        self._records.inc()
        self._cycles.observe(payload.get("cycles", 0))
        return 1

    # ------------------------------------------------------------------ state

    @property
    def done(self):
        return len(self.seen)

    @property
    def total(self):
        """Best known campaign size: --expect, else the stored spec's."""
        if self.expected is not None:
            return self.expected
        if self.spec:
            return self.spec.get("injections")
        return None

    def complete(self):
        total = self.total
        return total is not None and self.done >= total

    # ------------------------------------------------------------------ views

    def detection_matrix(self, z=1.96):
        """Per-outcome counts with Wilson intervals, plus the headline.

        Every outcome's share gets its own interval over all aggregated
        runs; the ``detection`` row is the paper's coverage number —
        DETECTED over runs whose fault actually fired — with its
        interval, computed exactly as the post-hoc report computes it.
        """
        total = self.done
        matrix = {}
        for outcome in Outcome:
            count = self.counts.get(outcome.value, 0)
            low, high = wilson_interval(count, total, z=z)
            matrix[outcome.value] = {"count": count,
                                     "share": rate(count, total),
                                     "ci": [low, high]}
        detected, injected, det_rate, (low, high) = \
            detection_stats_from_counts(self.counts, z=z)
        return {"outcomes": matrix,
                "detection": {"detected": detected, "injected": injected,
                              "rate": det_rate, "ci": [low, high]},
                "damaging": damage_count_from_counts(self.counts),
                "runs": total}

    def snapshot(self):
        """Schema-stable live document (the ``serve --json`` payload)."""
        return {"schema": SCHEMA,
                "fingerprint": self.fingerprint,
                "stores": [tail.path for tail in self.tails],
                "expected": self.total,
                "done": self.done,
                "complete": self.complete(),
                "counts": dict(self.counts),
                "matrix": self.detection_matrix(),
                "metrics": self.metrics.snapshot()}

    def render(self):
        """One-screen live text view for ``serve --watch``."""
        total = self.total
        header = ("campaign %s: %d/%s records"
                  % (self.fingerprint or "?", self.done,
                     total if total is not None else "?"))
        matrix = self.detection_matrix()
        det = matrix["detection"]
        lines = [header]
        for outcome in Outcome:
            cell = matrix["outcomes"][outcome.value]
            if not cell["count"]:
                continue
            lines.append("  %-14s %6d  %5.1f%%  (CI %.1f%% - %.1f%%)"
                         % (outcome.value, cell["count"],
                            100 * cell["share"], 100 * cell["ci"][0],
                            100 * cell["ci"][1]))
        lines.append("  detection: %d/%d = %.1f%%  (CI %.1f%% - %.1f%%)"
                     % (det["detected"], det["injected"], 100 * det["rate"],
                        100 * det["ci"][0], 100 * det["ci"][1]))
        return "\n".join(lines)

    def final_report(self, title="Fault-injection campaign"):
        """The counts-based campaign report (see module docstring)."""
        return format_outcome_report(self.counts, title=title)
