"""Parallel, resumable campaign execution.

The engine fixes the two structural costs of the original serial loop in
``repro.security.faults``:

* the workload is **assembled once per campaign** (once per worker
  process in parallel mode), not once per injection — only the cheap
  machine build and memory image copy happen per run;
* injections fan out over a ``multiprocessing`` worker pool in chunks,
  with per-injection derived seeds so results are identical regardless
  of worker count or completion order.

Fork mode (``fork=True`` / ``repro campaign --fork``) removes the third
structural cost — re-simulating the fault-free warmup prefix for every
injection.  For fault models whose :meth:`~repro.campaign.models
.FaultModel.arm` is pure (reg-flip, mem-flip: arming only picks the
trigger cycle), injections are grouped by trigger cycle, each distinct
prefix is simulated once on a trunk machine, checkpointed with
:meth:`repro.system.Machine.checkpoint`, and every injection at that
trigger is restore-and-strike.  Because checkpoint/restore is
cycle-exact, forked and cold campaigns produce byte-identical records —
the flag is an execution detail and deliberately not part of the spec
fingerprint.  Models that arm by mutating the machine (instr-flip,
cf-corrupt) silently keep the fresh-machine path.

Workers are crash-isolated: a Python-level failure inside one injection
is caught in the worker and classified :data:`Outcome.CRASHED`; a hard
worker death (the pool breaks) fails only the chunk that was in flight —
its runs are classified CRASHED after one retry and the pool is rebuilt
for the remaining work.
"""

import hashlib
import json
import warnings

from repro.campaign.models import Injection, Outcome, get_model
from repro.campaign.options import ExecutionOptions
from repro.campaign.space import sample_injections
from repro.campaign.store import ResultStore
from repro.isa.assembler import assemble
from repro.isa.encoding import DecodeError, decode
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import EventKind
from repro.rse.check import MODULE_ICM
from repro.rse.modules.icm import build_checker_memory, make_icm_injector
from repro.system import build_machine

STACK_TOP = 0x7FFF0000

#: Built-in demo workload: 16 passes of a running-checksum loop over a
#: live data array, giving every fault model a non-trivial space
#: (checked branches, registers carrying state across thousands of
#: cycles, data words read and written every iteration) and enough
#: cycles per run that parallel campaigns beat serial ones.
DEMO_WORKLOAD = """
    .data
arr:    .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
    .text
main:
    li $s1, 0
    li $t5, 16
    li $s0, 0
pass:
    li $t0, 0
    li $t1, 16
    la $t3, arr
loop:
    lw $t2, 0($t3)
    add $s0, $s0, $t2
    sw $s0, 0($t3)
    addi $t3, $t3, 4
    andi $t4, $t0, 3
    beqz $t4, skip
    addi $s0, $s0, 7
skip:
    addi $t0, $t0, 1
    blt $t0, $t1, loop
    addi $s1, $s1, 1
    blt $s1, $t5, pass
    halt
"""


class CampaignSpec:
    """Everything that defines a campaign's *results* (picklable).

    Execution details — worker count, chunk size, store path — live
    outside the spec so they never affect the fingerprint: the same spec
    run serially, in parallel, or resumed must produce the same records.
    """

    def __init__(self, source, model="instr-flip", model_options=None,
                 protected=True, injections=50, seed=99,
                 max_cycles=500_000, result_regs=(16,), assertions=False):
        self.source = source
        self.model = model
        self.model_options = dict(model_options or {})
        self.protected = protected
        self.injections = injections
        self.seed = seed
        self.max_cycles = max_cycles
        self.result_regs = tuple(result_regs)
        self.assertions = assertions

    def to_dict(self):
        doc = {"source": self.source, "model": self.model,
               "model_options": self.model_options,
               "protected": self.protected, "injections": self.injections,
               "seed": self.seed, "max_cycles": self.max_cycles,
               "result_regs": list(self.result_regs)}
        if self.assertions:
            # Only serialized when on: monitoring changes classification
            # (the ASSERTION outcome), so it belongs in the fingerprint,
            # but omitting the key when off keeps every pre-existing
            # store's fingerprint valid.
            doc["assertions"] = True
        return doc

    @classmethod
    def from_dict(cls, payload):
        return cls(source=payload["source"], model=payload["model"],
                   model_options=payload.get("model_options") or {},
                   protected=payload["protected"],
                   injections=payload["injections"], seed=payload["seed"],
                   max_cycles=payload["max_cycles"],
                   result_regs=tuple(payload.get("result_regs") or (16,)),
                   assertions=payload.get("assertions", False))

    def fingerprint(self):
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class CampaignContext:
    """Per-campaign facts shared by every injection, built once.

    Assembly, the golden (fault-free) run, and the target enumerations
    all happen here — exactly once per process — instead of inside the
    per-injection loop.
    """

    def __init__(self, spec, batch=True, golden=None):
        self.spec = spec
        # Execution detail like ``fork``: batch=False forces the
        # pipeline's one-step()-per-cycle reference loop.  Records are
        # identical either way, so it stays out of the fingerprint.
        self.batch = batch
        self.model = get_model(spec.model, **spec.model_options)
        if not getattr(self.model, "needs_workload", True):
            # Generative models (the attack corpus) synthesise a guest
            # program per injection: spec.source is only a fingerprint
            # tag, and there is nothing to assemble, enumerate or run
            # golden here.
            self.asm = None
            self.stack_top = STACK_TOP
            self.checked_pcs = []
            self.control_pcs = []
            self.data_words = []
            self.golden_regs = {}
            self.golden_cycles = spec.max_cycles
            return
        self.asm = assemble(spec.source)
        self.stack_top = STACK_TOP
        # Checked pcs: what the ICM would provision (used as the target
        # set whether or not the campaign machine carries the ICM, so
        # protected and baseline campaigns hit the same instructions).
        self.checked_pcs = self._enumerate_checked()
        self.control_pcs = self._enumerate_control()
        self.data_words = [self.asm.data_base + offset
                           for offset in range(0, len(self.asm.data) & ~3, 4)]
        if golden is not None:
            # Precomputed golden results (a CampaignImage shipped them):
            # skip re-simulating the fault-free workload in this process.
            self.golden_regs = {int(reg): value
                                for reg, value in golden["regs"].items()}
            self.golden_cycles = golden["cycles"]
        else:
            self.golden_regs, self.golden_cycles = self._golden_run()

    def _enumerate_checked(self):
        from repro.memory.mainmem import MainMemory

        memory = MainMemory()
        memory.store_bytes(self.asm.text_base, self.asm.text)
        checker_map = build_checker_memory(memory, self.asm.text_base,
                                           len(self.asm.text))
        return sorted(checker_map)

    def _enumerate_control(self):
        pcs = []
        text = self.asm.text
        for offset in range(0, len(text) & ~3, 4):
            word = int.from_bytes(text[offset:offset + 4], "little")
            try:
                instr = decode(word)
            except DecodeError:
                continue
            if instr.is_control:
                pcs.append(self.asm.text_base + offset)
        return pcs

    def _golden_run(self):
        machine, __ = build_campaign_machine(self.asm, protected=False,
                                             batch=self.batch)
        event = machine.pipeline.run(max_cycles=self.spec.max_cycles)
        if event.kind is not EventKind.HALT:
            raise RuntimeError("golden run did not halt: %r" % event)
        golden = {reg: machine.pipeline.regs[reg]
                  for reg in self.spec.result_regs}
        return golden, machine.pipeline.cycle


def build_campaign_machine(asm, protected, assertions=False, batch=True):
    """Fresh machine loaded with the (pre-assembled) workload image."""
    machine = build_machine(with_rse=protected,
                            modules=("icm",) if protected else (),
                            pipeline_config=(None if batch
                                             else PipelineConfig(batch=False)))
    machine.memory.store_bytes(asm.text_base, asm.text)
    machine.memory.store_bytes(asm.data_base, asm.data)
    checker_map = {}
    if protected:
        icm = machine.module(MODULE_ICM)
        checker_map = build_checker_memory(machine.memory, asm.text_base,
                                           len(asm.text))
        icm.configure(checker_map)
        machine.rse.enable_module(MODULE_ICM)
        machine.pipeline.check_injector = make_icm_injector(checker_map)
    machine.pipeline.reset_at(asm.entry)
    machine.pipeline.regs[29] = STACK_TOP
    if assertions:
        machine.assertions.attach()
    return machine, checker_map


def classify(machine, ctx, event):
    """Map how the run ended to an :class:`Outcome`.

    Module detection (CHECK_ERROR) outranks the assertion channel: the
    paper's modules are the mechanism under evaluation, the invariant
    suite is the harness watching the machine itself.  A run that
    neither module caught but that broke a microarchitectural invariant
    classifies ASSERTION regardless of how it ended — the violation is
    the earliest, most localised evidence of the corruption.
    """
    if event.kind is EventKind.CHECK_ERROR:
        return Outcome.DETECTED
    if machine.assertions.violation_count():
        return Outcome.ASSERTION
    if event.kind is EventKind.FAULT:
        return Outcome.FAULTED
    if event.kind is EventKind.MAX_CYCLES:
        return Outcome.HUNG
    if event.kind is EventKind.HALT:
        intact = all(machine.pipeline.regs[reg] == value
                     for reg, value in ctx.golden_regs.items())
        return Outcome.BENIGN if intact else Outcome.CORRUPTED
    return Outcome.CRASHED      # SYSCALL/TIMER: escaped the fault model


def strike_injection(ctx, machine, injection):
    """Arm, trigger and classify one injection on a ready *machine*.

    *machine* must hold the pristine (cycle-boundary) workload state —
    freshly built, or just restored from a checkpoint image.  Raises on
    simulator failure; callers own crash isolation.
    """
    budget = ctx.spec.max_cycles
    trigger = ctx.model.arm(machine, ctx, injection.params)
    if trigger:
        if not 0 < trigger < budget:
            # The model sampled a trigger outside the run budget.
            # Clamping would fire the fault at a cycle the model
            # never chose; report the run as never injected instead.
            return not_triggered_record(injection)
        event = machine.pipeline.run(max_cycles=trigger)
        if event.kind is not EventKind.MAX_CYCLES:
            # The workload ended before the armed trigger: fire()
            # never ran, so no fault landed and the outcome says
            # nothing about detection.
            return not_triggered_record(injection, event=event,
                                        cycles=machine.pipeline.cycle)
        # Reached the trigger point: strike, then run out the rest
        # of the budget.
        ctx.model.fire(machine, ctx, injection.params)
        event = machine.pipeline.run(max_cycles=budget - trigger)
    else:
        event = machine.pipeline.run(max_cycles=budget)
    outcome = classify(machine, ctx, event)
    record = {"id": injection.id, "model": injection.model,
              "seed": injection.seed, "params": injection.params,
              "outcome": outcome.value, "event": event.kind.value,
              "pc": event.pc, "cycles": machine.pipeline.cycle}
    if ctx.spec.assertions:
        record["assertions"] = machine.assertions.violation_count()
    return record


def execute_injection(ctx, injection):
    """Run one injection on a fresh machine; returns its record dict."""
    try:
        if getattr(ctx.model, "owns_execution", False):
            return ctx.model.execute(ctx, injection)
        machine, __ = build_campaign_machine(ctx.asm, ctx.spec.protected,
                                             assertions=ctx.spec.assertions,
                                             batch=ctx.batch)
        return strike_injection(ctx, machine, injection)
    except Exception as exc:                         # crash-isolate the run
        return crashed_record(injection, repr(exc))


def crashed_record(injection, error="worker died"):
    return {"id": injection.id, "model": injection.model,
            "seed": injection.seed, "params": injection.params,
            "outcome": Outcome.CRASHED.value, "event": "crash",
            "pc": 0, "cycles": 0, "error": error}


def not_triggered_record(injection, event=None, cycles=0):
    """Record for a run whose fault never fired.

    With *event* the workload ended there before reaching the armed
    trigger; without, the sampled trigger fell outside the cycle budget
    and the run was skipped outright.
    """
    return {"id": injection.id, "model": injection.model,
            "seed": injection.seed, "params": injection.params,
            "outcome": Outcome.NOT_TRIGGERED.value,
            "event": event.kind.value if event is not None else "skipped",
            "pc": event.pc if event is not None else 0,
            "cycles": cycles}


# ------------------------------------------------------------ fork-at-trigger

class ForkEngine:
    """Shared-prefix execution: simulate each distinct trigger prefix once.

    Keeps one trunk machine plus two checkpoints: the pristine machine
    (cycle 0) and the latest trigger prefix.  Triggers should arrive in
    ascending order for maximal prefix reuse; a smaller trigger simply
    rewinds to the base checkpoint and re-advances.
    """

    def __init__(self, ctx):
        self.ctx = ctx
        # Warm the checkpoint layer's field-name cache on a throwaway
        # machine: the first capture of each class de-optimises that
        # instance's attribute access (CPython materialises __dict__),
        # and the trunk machine simulates every strike tail — it must
        # not be the one paying that.
        from repro import checkpoint as checkpoint_layer

        sacrifice, __ = build_campaign_machine(ctx.asm, ctx.spec.protected,
                                               batch=ctx.batch)
        checkpoint_layer.warm(sacrifice)
        self.machine, __ = build_campaign_machine(ctx.asm, ctx.spec.protected,
                                                  batch=ctx.batch)
        self.base = self.machine.checkpoint()
        self.prefix = self.base
        # (event, end_cycle) once the fault-free workload is known to end
        # before some trigger; the prefix is deterministic, so this holds
        # for every trigger >= end_cycle.
        self.terminal = None

    def _advance_to(self, trigger):
        """Point ``self.prefix`` at cycle *trigger* exactly.

        Returns True when the trigger is reachable; False when the
        fault-free workload ends first (``self.terminal`` then holds the
        terminal event, matching what a cold run would report).
        """
        if self.terminal is not None and trigger >= self.terminal[1]:
            return False
        if trigger < self.prefix.cycle:
            self.prefix = self.base
        if self.prefix.cycle == trigger:
            return True
        machine = self.machine
        machine.restore(self.prefix)
        event = machine.pipeline.run(max_cycles=trigger - self.prefix.cycle)
        if event.kind is EventKind.MAX_CYCLES:
            self.prefix = machine.checkpoint()
            return True
        self.terminal = (event, machine.pipeline.cycle)
        return False

    def strike(self, injection, trigger):
        """Restore the prefix at *trigger*, fire, run out the budget."""
        ctx = self.ctx
        if not self._advance_to(trigger):
            event, cycles = self.terminal
            return not_triggered_record(injection, event=event, cycles=cycles)
        machine = self.machine
        machine.restore(self.prefix)
        ctx.model.fire(machine, ctx, injection.params)
        event = machine.pipeline.run(
            max_cycles=ctx.spec.max_cycles - trigger)
        outcome = classify(machine, ctx, event)
        return {"id": injection.id, "model": injection.model,
                "seed": injection.seed, "params": injection.params,
                "outcome": outcome.value, "event": event.kind.value,
                "pc": event.pc, "cycles": machine.pipeline.cycle}


def forked_injection(ctx, engine, injection):
    """One injection through the fork engine, with a cold-path fallback.

    Any failure inside the checkpoint machinery falls back to
    :func:`execute_injection` on a fresh machine, which produces the
    identical record (just without the shared-prefix saving).
    """
    try:
        trigger = ctx.model.arm(None, ctx, injection.params)
        if not (trigger and 0 < trigger < ctx.spec.max_cycles):
            return not_triggered_record(injection)
        return engine.strike(injection, trigger)
    except Exception:
        return execute_injection(ctx, injection)


def _fork_order(ctx, injections):
    """Ascending-trigger order, id-stable, for maximal prefix reuse."""
    def key(injection):
        try:
            trigger = ctx.model.arm(None, ctx, injection.params)
        except Exception:
            trigger = 0
        return (trigger or 0, injection.id)
    return sorted(injections, key=key)


class CampaignRun:
    """The outcome of :func:`run_campaign`: ordered records + metrics.

    Carries the :class:`~repro.campaign.options.ExecutionOptions` the
    campaign actually ran with — records never depend on them, but
    audits and reports want to know how the numbers were produced.
    """

    def __init__(self, spec, records, options=None):
        self.spec = spec
        self.options = options if options is not None else ExecutionOptions()
        self.records = sorted(records, key=lambda record: record["id"])

    def count(self, outcome):
        value = outcome.value if isinstance(outcome, Outcome) else outcome
        return sum(1 for record in self.records
                   if record["outcome"] == value)

    def summary(self):
        return {outcome.value: self.count(outcome) for outcome in Outcome}

    @property
    def injected_runs(self):
        """Runs whose fault actually landed (NOT_TRIGGERED excluded)."""
        return len(self.records) - self.count(Outcome.NOT_TRIGGERED)

    @property
    def detection_rate(self):
        """DETECTED over runs where a fault was injected.

        NOT_TRIGGERED runs never had :meth:`FaultModel.fire` called, so
        counting them in the denominator would deflate coverage with
        runs that say nothing about detection.
        """
        injected = self.injected_runs
        if not injected:
            return 0.0
        return self.count(Outcome.DETECTED) / injected

    def __repr__(self):
        return "CampaignRun(%s)" % self.summary()


# ----------------------------------------------------------------- worker IPC

_WORKER_CTX = None
_WORKER_FORK = None


def _worker_init(spec_dict, fork=False, batch=True):
    """Pool initializer: build the campaign context once per process."""
    global _WORKER_CTX, _WORKER_FORK
    _WORKER_CTX = CampaignContext(CampaignSpec.from_dict(spec_dict),
                                  batch=batch)
    _WORKER_FORK = None
    if fork and _WORKER_CTX.model.arm_is_pure:
        try:
            _WORKER_FORK = ForkEngine(_WORKER_CTX)
        except Exception:
            _WORKER_FORK = None      # cold path still produces the records


def _worker_run_chunk(injection_dicts):
    injections = [Injection.from_dict(payload) for payload in injection_dicts]
    if _WORKER_FORK is not None:
        return [forked_injection(_WORKER_CTX, _WORKER_FORK, injection)
                for injection in injections]
    return [execute_injection(_WORKER_CTX, injection)
            for injection in injections]


def _parallel_dispatch(spec, todo, chunk_size, workers, emit, fork=False,
                       batch=True):
    """Fan chunks out over a process pool, surviving worker death.

    A chunk whose future fails (worker killed, pool broken) is retried
    once on a fresh pool; failing a second time classifies its
    injections as CRASHED.  The campaign itself always completes.
    """
    import concurrent.futures as futures_mod

    chunks = [todo[index:index + chunk_size]
              for index in range(0, len(todo), chunk_size)]
    attempts = {}
    pending = list(enumerate(chunks))
    spec_dict = spec.to_dict()
    while pending:
        pool = futures_mod.ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init,
            initargs=(spec_dict, fork, batch))
        submitted = {
            pool.submit(_worker_run_chunk,
                        [injection.to_dict() for injection in chunk]):
            (chunk_id, chunk)
            for chunk_id, chunk in pending}
        pending = []
        try:
            for future in futures_mod.as_completed(submitted):
                chunk_id, chunk = submitted[future]
                try:
                    emit(future.result())
                except Exception:
                    attempts[chunk_id] = attempts.get(chunk_id, 0) + 1
                    if attempts[chunk_id] > 1:
                        emit([crashed_record(injection)
                              for injection in chunk])
                    else:
                        pending.append((chunk_id, chunk))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


# ------------------------------------------------------------------- campaign

#: Legacy run_campaign keyword -> ExecutionOptions field.
_LEGACY_KWARGS = {"workers": "workers", "chunk_size": "chunk_size",
                  "store_path": "store", "fork": "fork", "batch": "batch"}


def _coerce_options(options, legacy):
    """Resolve the options object from the new or the deprecated shape."""
    if legacy:
        unknown = sorted(set(legacy) - set(_LEGACY_KWARGS))
        if unknown:
            raise TypeError("run_campaign() got unexpected keyword "
                            "argument(s): %s" % ", ".join(unknown))
        if options is not None:
            raise TypeError("pass either options=ExecutionOptions(...) or "
                            "the legacy keyword arguments, not both")
        warnings.warn(
            "run_campaign(spec, %s=...) is deprecated; pass "
            "options=ExecutionOptions(...) instead"
            % ", ".join(sorted(legacy)),
            DeprecationWarning, stacklevel=3)
        return ExecutionOptions(**{_LEGACY_KWARGS[key]: value
                                   for key, value in legacy.items()})
    return options if options is not None else ExecutionOptions()


def _full_coverage(spec, records):
    """True when *records* already hold every id the spec defines."""
    done = {record["id"] for record in records}
    return set(range(spec.injections)) <= done


def run_campaign(spec, options=None, progress=None, **legacy):
    """Execute (or resume) a campaign; returns a :class:`CampaignRun`.

    Args:
        spec: the :class:`CampaignSpec` defining the campaign — the
            only input that affects the records.
        options: an :class:`~repro.campaign.options.ExecutionOptions`
            describing how to run (workers, chunking, fork, batch,
            shards, store).  ``options.shards > 0`` routes execution
            through the sharded campaign service.
        progress: optional ``callback(done, total)`` fired as records
            land (including records recovered from the store).

    The pre-redesign keyword arguments (``workers``, ``chunk_size``,
    ``store_path``, ``fork``, ``batch``) are still accepted and mapped
    onto an :class:`ExecutionOptions`, with a :class:`DeprecationWarning`.
    """
    options = _coerce_options(options, legacy)
    if options.shards:
        from repro.campaign.service import run_service

        return run_service(spec, options, progress=progress)

    store = ResultStore(options.store) if options.store else None
    prior = []
    if store is not None and store.exists():
        __, prior = store.verify(spec.fingerprint())
        if _full_coverage(spec, prior):
            # The store already covers the whole spec: a pure store
            # read.  No sampling, no assembly, no golden run — resumes
            # over million-injection stores must not pay simulation
            # costs to return existing records.
            if progress is not None:
                progress(spec.injections, spec.injections)
            return CampaignRun(spec, prior, options)

    ctx = CampaignContext(spec, batch=options.batch)
    injections = sample_injections(ctx.model, ctx, spec.injections, spec.seed)
    if prior:
        done = {record["id"] for record in prior}
        todo = [injection for injection in injections
                if injection.id not in done]
    else:
        todo = injections
        if store is not None:
            store.write_header(spec.fingerprint(), spec.to_dict())

    records = list(prior)
    total = len(injections)
    if progress is not None and records:
        progress(len(records), total)

    def emit(batch):
        for record in batch:
            records.append(record)
            if store is not None:
                store.append(record)
        if progress is not None:
            progress(len(records), total)

    # Fork mode reuses one trunk machine across injections; an attached
    # monitor would carry one strike's violations into the next run's
    # classification, so monitored campaigns always take the cold path.
    use_fork = options.fork and ctx.model.arm_is_pure and not spec.assertions
    try:
        if options.workers <= 1:
            if use_fork and todo:
                engine = ForkEngine(ctx)
                for injection in _fork_order(ctx, todo):
                    emit([forked_injection(ctx, engine, injection)])
            else:
                for injection in todo:
                    emit([execute_injection(ctx, injection)])
        elif todo:
            if use_fork:
                todo = _fork_order(ctx, todo)
            _parallel_dispatch(spec, todo, options.chunk_size,
                               options.workers, emit, fork=use_fork,
                               batch=options.batch)
    finally:
        if store is not None:
            store.close()
    return CampaignRun(spec, records, options)


def resume_spec(store_path):
    """Reconstruct the :class:`CampaignSpec` a store was written by."""
    header, __ = ResultStore(store_path).load()
    return CampaignSpec.from_dict(header["spec"])


def replay(spec, run_id, batch=True):
    """Re-execute one injection by id; returns its fresh record."""
    if not 0 <= run_id < spec.injections:
        raise ValueError("run id %d outside campaign of %d injections"
                         % (run_id, spec.injections))
    ctx = CampaignContext(spec, batch=batch)
    injections = sample_injections(ctx.model, ctx, spec.injections, spec.seed)
    return execute_injection(ctx, injections[run_id])
