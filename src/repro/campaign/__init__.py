"""repro.campaign — parallel, resumable fault-injection campaigns.

The paper evaluates every RSE module by injecting faults and tabulating
outcomes; this package makes that a first-class subsystem:

* :mod:`repro.campaign.models` — the fault-model registry (instruction
  bit flips, register-file flips, data-memory flips, control-flow
  corruption), each producing deterministic injections;
* :mod:`repro.campaign.space` — seeded, order-independent sampling of
  the injection space;
* :mod:`repro.campaign.runner` — serial or multiprocessing execution
  with crash-isolated workers, per-run cycle budgets, and fork-at-trigger
  prefix sharing over :mod:`repro.checkpoint` machine snapshots;
* :mod:`repro.campaign.options` — :class:`ExecutionOptions`, the frozen
  how-to-run dataclass behind ``run_campaign(spec, options=...)``;
* :mod:`repro.campaign.service` — the sharded campaign service: warmed
  :class:`~repro.checkpoint.CampaignImage` distribution, work-stealing
  shard workers, per-shard resumable stores, verified merge;
* :mod:`repro.campaign.aggregate` — incremental aggregation over live
  shard stores (``repro campaign serve``);
* :mod:`repro.campaign.store` — the append-only JSONL store campaigns
  resume from and single runs replay out of;
* :mod:`repro.campaign.report` — outcome tables, Wilson-interval
  detection rates, protected-vs-unprotected comparisons.
"""

from repro.campaign.aggregate import CampaignAggregator, StoreTail
from repro.campaign.models import (FaultModel, Injection, MODELS, Outcome,
                                   get_model, register)
from repro.campaign.options import ExecutionOptions
from repro.campaign.report import (detection_stats,
                                   detection_stats_from_counts,
                                   format_campaign_report, format_comparison,
                                   format_outcome_report, outcome_counts)
from repro.campaign.runner import (CampaignRun, CampaignSpec, DEMO_WORKLOAD,
                                   ForkEngine, replay, resume_spec,
                                   run_campaign, strike_injection)
from repro.campaign.service import (ImageEngine, ServiceError,
                                    build_campaign_image, merge_shards,
                                    plan_shards, run_service,
                                    shard_store_path)
from repro.campaign.space import derive_seed, injection_at, sample_injections
from repro.campaign.store import ResultStore, StoreMismatch

__all__ = [
    "CampaignAggregator", "CampaignRun", "CampaignSpec", "DEMO_WORKLOAD",
    "ExecutionOptions", "FaultModel", "ForkEngine", "ImageEngine",
    "Injection", "MODELS", "Outcome", "ResultStore", "ServiceError",
    "StoreMismatch", "StoreTail",
    "build_campaign_image", "derive_seed", "detection_stats",
    "detection_stats_from_counts", "format_campaign_report",
    "format_comparison", "format_outcome_report", "get_model",
    "injection_at", "merge_shards", "outcome_counts", "plan_shards",
    "register", "replay", "resume_spec", "run_campaign", "run_service",
    "sample_injections", "shard_store_path", "strike_injection",
]
