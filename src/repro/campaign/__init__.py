"""repro.campaign — parallel, resumable fault-injection campaigns.

The paper evaluates every RSE module by injecting faults and tabulating
outcomes; this package makes that a first-class subsystem:

* :mod:`repro.campaign.models` — the fault-model registry (instruction
  bit flips, register-file flips, data-memory flips, control-flow
  corruption), each producing deterministic injections;
* :mod:`repro.campaign.space` — seeded, order-independent sampling of
  the injection space;
* :mod:`repro.campaign.runner` — serial or multiprocessing execution
  with crash-isolated workers, per-run cycle budgets, and fork-at-trigger
  prefix sharing over :mod:`repro.checkpoint` machine snapshots;
* :mod:`repro.campaign.store` — the append-only JSONL store campaigns
  resume from and single runs replay out of;
* :mod:`repro.campaign.report` — outcome tables, Wilson-interval
  detection rates, protected-vs-unprotected comparisons.
"""

from repro.campaign.models import (FaultModel, Injection, MODELS, Outcome,
                                   get_model, register)
from repro.campaign.report import (detection_stats, format_campaign_report,
                                   format_comparison, outcome_counts)
from repro.campaign.runner import (CampaignRun, CampaignSpec, DEMO_WORKLOAD,
                                   ForkEngine, replay, resume_spec,
                                   run_campaign)
from repro.campaign.space import derive_seed, sample_injections
from repro.campaign.store import ResultStore, StoreMismatch

__all__ = [
    "CampaignRun", "CampaignSpec", "DEMO_WORKLOAD", "FaultModel",
    "ForkEngine", "Injection", "MODELS", "Outcome", "ResultStore",
    "StoreMismatch",
    "derive_seed", "detection_stats", "format_campaign_report",
    "format_comparison", "get_model", "outcome_counts", "register",
    "replay", "resume_spec", "run_campaign", "sample_injections",
]
