"""Resumable JSONL result store.

One campaign maps to one append-only JSONL file:

* line 1 is a **header** record (``kind: "campaign"``) carrying the full
  campaign spec and its fingerprint;
* every following line is one **run** record (``kind: "run"``) appended
  the moment the injection finishes, so a killed campaign loses at most
  the in-flight chunk.

Resuming re-opens the file, verifies the fingerprint against the spec
being resumed (refusing to mix configurations), and skips every id that
already has a record.  Because injections are derived from the campaign
seed by id (see :mod:`repro.campaign.space`), the union of old and new
records is identical to an uninterrupted run.
"""

import json
import os


class StoreMismatch(RuntimeError):
    """The store on disk belongs to a different campaign configuration."""


class ResultStore:
    """Append-one-record-per-injection JSONL store."""

    def __init__(self, path):
        self.path = path
        self._handle = None

    # ----------------------------------------------------------------- write

    def write_header(self, fingerprint, spec_dict):
        """Start a fresh store (truncates any existing file)."""
        self.close()
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "w")
        self._write({"kind": "campaign", "fingerprint": fingerprint,
                     "spec": spec_dict})

    def append(self, record):
        """Append one run record; flushed immediately for crash safety."""
        if self._handle is None:
            self._handle = open(self.path, "a")
        self._write(dict(record, kind="run"))

    def _write(self, payload):
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------ read

    def exists(self):
        return os.path.exists(self.path) and os.path.getsize(self.path) > 0

    def load(self):
        """Parse the store; returns ``(header, run_records)``.

        Tolerates a torn final line (the campaign was killed mid-write).
        """
        header = None
        records = []
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    break               # torn tail from a killed campaign
                if payload.get("kind") == "campaign":
                    header = payload
                elif payload.get("kind") == "run":
                    del payload["kind"]     # return records exactly as run
                    records.append(payload)
        if header is None:
            raise StoreMismatch("%s has no campaign header" % self.path)
        return header, records

    def verify(self, fingerprint):
        """Load and check the store belongs to *fingerprint*'s campaign."""
        header, records = self.load()
        if header["fingerprint"] != fingerprint:
            raise StoreMismatch(
                "%s was written by a different campaign configuration "
                "(fingerprint %s, expected %s)"
                % (self.path, header["fingerprint"], fingerprint))
        return header, records

    def done_ids(self):
        __, records = self.load()
        return {record["id"] for record in records}

    def record_for(self, run_id):
        """The stored record for one injection id, or None."""
        __, records = self.load()
        for record in records:
            if record["id"] == run_id:
                return record
        return None
