"""Resumable JSONL result store.

One campaign maps to one append-only JSONL file:

* line 1 is a **header** record (``kind: "campaign"``) carrying the full
  campaign spec and its fingerprint;
* every following line is one **run** record (``kind: "run"``) appended
  the moment the injection finishes, so a killed campaign loses at most
  the in-flight chunk.

Resuming re-opens the file, verifies the fingerprint against the spec
being resumed (refusing to mix configurations), and skips every id that
already has a record.  Because injections are derived from the campaign
seed by id (see :mod:`repro.campaign.space`), the union of old and new
records is identical to an uninterrupted run.
"""

import json
import os


class StoreMismatch(RuntimeError):
    """The store on disk belongs to a different campaign configuration."""


class ResultStore:
    """Append-one-record-per-injection JSONL store."""

    def __init__(self, path):
        self.path = path
        self._handle = None

    # ----------------------------------------------------------------- write

    def write_header(self, fingerprint, spec_dict, extra=None):
        """Start a fresh store (truncates any existing file).

        *extra* merges additional header fields — the sharded service
        records its shard's identity and id range here (``"shard":
        {"id", "start", "stop", "of"}``) so a shard store is
        self-describing and individually resumable.
        """
        self.close()
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "w")
        header = {"kind": "campaign", "fingerprint": fingerprint,
                  "spec": spec_dict}
        if extra:
            header.update(extra)
        self._write(header)

    def append(self, record):
        """Append one run record; flushed immediately for crash safety."""
        if self._handle is None:
            self._repair_tail()
            self._handle = open(self.path, "a")
        self._write(dict(record, kind="run"))

    def _repair_tail(self):
        """Terminate a torn final line before appending after a crash.

        A killed campaign can leave a partial record as the last line;
        appending straight after it would fuse the fragment and the new
        record into one corrupt line.  Writing the missing newline first
        turns the fragment into a lone unparsable line that
        :meth:`load` skips, and the record that follows stays intact.
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                torn = handle.read(1) != b"\n"
        except OSError:
            return
        if torn:
            with open(self.path, "ab") as handle:
                handle.write(b"\n")

    def _write(self, payload):
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------ read

    def exists(self):
        return os.path.exists(self.path) and os.path.getsize(self.path) > 0

    def load(self):
        """Parse the store; returns ``(header, run_records)``.

        Tolerates torn lines anywhere (a campaign killed mid-write
        leaves a partial record; resuming terminates it and appends
        after, so the fragment can sit mid-file) and deduplicates by
        injection id, first record winning — records are deterministic,
        so a duplicate is always byte-identical anyway.
        """
        header = None
        records = []
        seen = set()
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    continue            # torn line from a killed campaign
                if payload.get("kind") == "campaign":
                    header = payload
                elif payload.get("kind") == "run":
                    del payload["kind"]     # return records exactly as run
                    if payload.get("id") in seen:
                        continue
                    seen.add(payload.get("id"))
                    records.append(payload)
        if header is None:
            raise StoreMismatch("%s has no campaign header" % self.path)
        return header, records

    def verify(self, fingerprint):
        """Load and check the store belongs to *fingerprint*'s campaign."""
        header, records = self.load()
        if header["fingerprint"] != fingerprint:
            raise StoreMismatch(
                "%s was written by a different campaign configuration "
                "(fingerprint %s, expected %s)"
                % (self.path, header["fingerprint"], fingerprint))
        return header, records

    def done_ids(self):
        __, records = self.load()
        return {record["id"] for record in records}

    def record_for(self, run_id):
        """The stored record for one injection id, or None."""
        __, records = self.load()
        for record in records:
            if record["id"] == run_id:
                return record
        return None
