"""Seeded injection-space sampling.

A campaign is reproducible from ``(workload, model, seed, count)`` alone:
every injection gets a *derived seed* that is a pure function of the
campaign seed and the injection index, and its parameters are drawn from
a private ``random.Random(derived_seed)``.  Consequences:

* two campaigns with the same seed and config produce identical
  injection lists (the determinism regression tests pin this);
* any single injection can be regenerated — and replayed — from its id
  without re-running the ones before it;
* resume only needs the set of completed ids, not any RNG state.
"""

import random

from repro.campaign.models import Injection

_SEED_MULT = 1_000_003
_SEED_STRIDE = 7_919
_SEED_SALT = 0x5EED


def derive_seed(campaign_seed, index):
    """Per-injection seed: stable, order-independent, collision-sparse."""
    return (campaign_seed * _SEED_MULT + index * _SEED_STRIDE
            + _SEED_SALT) & 0x7FFFFFFF


def injection_at(model, space, index, campaign_seed):
    """Regenerate the single injection at *index* from a built *space*.

    This is the seed-range property the sharded campaign service leans
    on: a shard covering ids ``[start, stop)`` materialises exactly its
    own injections — no shared RNG stream, no sampling of the ids other
    shards own.
    """
    seed = derive_seed(campaign_seed, index)
    rng = random.Random(seed)
    return Injection(index, model.name, seed, model.sample(rng, space))


def sample_injections(model, ctx, count, campaign_seed):
    """Generate the full, deterministic injection list for a campaign."""
    space = model.build_space(ctx)
    return [injection_at(model, space, index, campaign_seed)
            for index in range(count)]
